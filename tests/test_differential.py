"""Differential equivalence tests: serial ≡ threads ≡ processes.

Every (engine × backend × worker-count) combination must produce
bit-identical outputs and equal interaction counts — see
``tests/harness/differential.py`` for the harness and the rationale for
excluding ``nodes_visited``.  The fast tests cover gravity, kNN, and SPH
across three worker counts; the ``slow``-marked matrix widens to every
engine, dataset, and tree type; hypothesis drives random trees and
visitors through the same assertions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.apps.knn.knn import KNNVisitor, brute_force_knn, knn_search
from repro.apps.sph.density import compute_density_knn
from repro.decomp import SfcDecomposer, decompose
from repro.exec import get_backend
from repro.particles.generators import clustered_clumps, uniform_cube
from repro.trees import build_tree

from tests.harness.differential import (
    TREE_BUILDERS,
    WORKER_COUNTS,
    CountInRadiusVisitor,
    assert_equivalent,
    brute_force_radius_counts,
    builder_differential_matrix,
    differential_matrix,
    run_combination,
)

HYPOTHESIS_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def small_tree():
    return build_tree(uniform_cube(500, seed=11), tree_type="oct", bucket_size=12)


@pytest.fixture(scope="module")
def clustered_tree():
    return build_tree(clustered_clumps(800, seed=5), tree_type="kd", bucket_size=10)


def gravity_setup(tree, with_potential=False, with_quadrupole=False):
    arrays = compute_centroid_arrays(
        tree, theta=0.6, with_quadrupole=with_quadrupole
    )

    def make(t):
        return GravityVisitor(t, arrays, G=1.0, softening=1e-3,
                              with_potential=with_potential)

    def collect(v):
        out = {"accel": v.accel}
        if v.potential is not None:
            out["potential"] = v.potential
        return out

    return make, collect


def knn_setup(k):
    def make(t):
        return KNNVisitor(t, k)

    def collect(v):
        # raw (unsorted) neighbour state: the strictest comparison
        return {"dist_sq": v.dist_sq, "index": v.index, "kth_sq": v.kth_sq}

    return make, collect


class TestGravityDifferential:
    def test_matrix_three_worker_counts(self, small_tree):
        make, collect = gravity_setup(small_tree)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=WORKER_COUNTS, expect_parallel=True)

    def test_matrix_with_recorder_and_potential(self, small_tree):
        make, collect = gravity_setup(small_tree, with_potential=True)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 4), record=True, expect_parallel=True)

    def test_matrix_with_decomposition_chunking(self, small_tree):
        """Partition-steered chunks (the decomp.partitions reuse path)."""
        pp = SfcDecomposer().assign(small_tree.particles, 4)
        decomp = decompose(small_tree, pp, n_subtrees=4)
        make, collect = gravity_setup(small_tree)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 4), decomposition=decomp,
                            expect_parallel=True)


class TestKNNDifferential:
    def test_matrix_three_worker_counts(self, small_tree):
        make, collect = knn_setup(k=6)
        base = differential_matrix(small_tree, "up-and-down", make, collect,
                                   workers=WORKER_COUNTS, expect_parallel=True)
        # and the serial oracle itself is right
        dist, _ = brute_force_knn(small_tree.particles.position, 6)
        order = np.argsort(base.outputs["dist_sq"], axis=1)
        rows = np.arange(small_tree.n_particles)[:, None]
        np.testing.assert_allclose(
            base.outputs["dist_sq"][rows, order], dist, rtol=0, atol=0
        )

    def test_public_api_backend_kwarg(self, small_tree):
        serial = knn_search(small_tree, 5)
        for backend in ("threads", "processes"):
            for w in (2, 4):
                with get_backend(backend, workers=w) as b:
                    res = knn_search(small_tree, 5, backend=b)
                assert np.array_equal(res.dist_sq, serial.dist_sq)
                assert np.array_equal(res.index, serial.index)


class TestSPHDifferential:
    def test_density_bit_identical(self, small_tree):
        serial = compute_density_knn(small_tree, k=16)
        for backend in ("threads", "processes"):
            for w in WORKER_COUNTS:
                with get_backend(backend, workers=w) as b:
                    par = compute_density_knn(small_tree, k=16, backend=b)
                label = f"{backend}/w{w}"
                assert np.array_equal(par.h, serial.h), label
                assert np.array_equal(par.density, serial.density), label
                assert np.array_equal(
                    par.neighbors.index, serial.neighbors.index
                ), label


class TestCountVisitorOracle:
    def test_matches_brute_force(self, small_tree):
        base = run_combination(
            small_tree, "transposed",
            lambda t: CountInRadiusVisitor(t, 0.15),
            lambda v: {"counts": v.counts},
        )
        oracle = brute_force_radius_counts(small_tree.particles.position, 0.15)
        assert np.array_equal(base.outputs["counts"], oracle)


class TestBatchedEngineDifferential:
    """The level-synchronous batched engine joins the matrix (PR 10)."""

    def test_gravity_matrix(self, small_tree):
        make, collect = gravity_setup(small_tree, with_potential=True)
        differential_matrix(small_tree, "batched", make, collect,
                            workers=WORKER_COUNTS, expect_parallel=True)

    def test_count_visitor_matches_other_engines(self, small_tree):
        make = lambda t: CountInRadiusVisitor(t, 0.15)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        runs = {
            eng: run_combination(small_tree, eng, make, collect)
            for eng in ("transposed", "per-bucket", "batched")
        }
        for eng in ("per-bucket", "batched"):
            assert_equivalent(runs["transposed"], runs[eng])

    def test_gravity_allclose_across_engines(self, small_tree):
        # Float accumulation order differs between engines, so cross-engine
        # gravity is allclose, not bit-identical; counts stay exact.
        make, collect = gravity_setup(small_tree)
        rt = run_combination(small_tree, "transposed", make, collect)
        rb = run_combination(small_tree, "batched", make, collect)
        np.testing.assert_allclose(rb.outputs["accel"], rt.outputs["accel"],
                                   rtol=1e-12, atol=1e-14)
        assert rb.counts == rt.counts


class TestTreeBuilderDifferential:
    """The tree_builder axis: recursive ≡ linear through the whole cube."""

    def test_count_visitor_cube(self):
        particles = uniform_cube(600, seed=21)
        make = lambda t: CountInRadiusVisitor(t, 0.15)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = builder_differential_matrix(
            particles, "transposed", make, collect, bucket_size=12,
            workers=(1, 2, 4),
        )
        oracle = brute_force_radius_counts(
            uniform_cube(600, seed=21).position, 0.15
        )
        # counts are in tree order; both builders share the permutation
        tree = build_tree(uniform_cube(600, seed=21), bucket_size=12)
        assert np.array_equal(
            tree.particles.scatter_to_input_order(base.outputs["counts"]),
            oracle,
        )

    def test_gravity_builders_bit_identical(self):
        particles = clustered_clumps(700, seed=13)
        trees = {
            b: build_tree(particles.copy(), bucket_size=16, builder=b)
            for b in TREE_BUILDERS
        }
        results = {}
        for b, tree in trees.items():
            make, collect = gravity_setup(tree, with_potential=True)
            results[b] = run_combination(tree, "transposed", make, collect)
        assert (results["recursive"].outputs["accel"].tobytes()
                == results["linear"].outputs["accel"].tobytes())
        assert (results["recursive"].outputs["potential"].tobytes()
                == results["linear"].outputs["potential"].tobytes())
        assert results["recursive"].counts == results["linear"].counts

    @pytest.mark.slow
    def test_batched_engine_builder_cube(self):
        particles = clustered_clumps(800, seed=3)
        make = lambda t: CountInRadiusVisitor(t, 0.3)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        builder_differential_matrix(particles, "batched", make, collect,
                                    workers=(1, 2, 4), record=True)


@pytest.mark.slow
class TestFullMatrix:
    """The wide matrix: every engine × backend × worker count × dataset."""

    ENGINES = ("transposed", "per-bucket", "batched")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_gravity_engines(self, engine, small_tree, clustered_tree):
        for tree in (small_tree, clustered_tree):
            make, collect = gravity_setup(tree, with_potential=True)
            differential_matrix(tree, engine, make, collect,
                                workers=(1, 2, 3, 4), record=True,
                                expect_parallel=True)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_count_visitor_engines(self, engine, clustered_tree):
        make = lambda t: CountInRadiusVisitor(t, 0.4)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = differential_matrix(clustered_tree, engine, make, collect,
                                   workers=(1, 2, 3, 4), record=True,
                                   expect_parallel=True)
        oracle = brute_force_radius_counts(clustered_tree.particles.position, 0.4)
        assert np.array_equal(base.outputs["counts"], oracle)

    def test_knn_wide(self, clustered_tree):
        make, collect = knn_setup(k=8)
        differential_matrix(clustered_tree, "up-and-down", make, collect,
                            workers=(1, 2, 3, 4, 7), expect_parallel=True)

    def test_gravity_quadrupole(self, small_tree):
        make, collect = gravity_setup(small_tree, with_quadrupole=True)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 3, 4), expect_parallel=True)


class TestHypothesisDifferential:
    """Random trees and visitors through the same equivalence assertions."""

    @given(
        n=st.integers(30, 150),
        seed=st.integers(0, 2**31 - 1),
        radius=st.floats(0.05, 0.6),
        bucket=st.integers(4, 24),
        tree_type=st.sampled_from(["oct", "kd"]),
        workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=15, **HYPOTHESIS_COMMON)
    def test_threads_equals_serial_and_brute_force(
        self, n, seed, radius, bucket, tree_type, workers
    ):
        tree = build_tree(uniform_cube(n, seed=seed), tree_type=tree_type,
                          bucket_size=bucket)
        make = lambda t: CountInRadiusVisitor(t, radius)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = run_combination(tree, "transposed", make, collect)
        other = run_combination(tree, "transposed", make, collect,
                                backend="threads", workers=workers)
        assert_equivalent(base, other)
        oracle = brute_force_radius_counts(tree.particles.position, radius)
        assert np.array_equal(base.outputs["counts"], oracle)

    @given(
        n=st.integers(40, 120),
        seed=st.integers(0, 2**31 - 1),
        k=st.integers(1, 10),
        workers=st.sampled_from([2, 4]),
    )
    @settings(max_examples=10, **HYPOTHESIS_COMMON)
    def test_knn_threads_equals_serial(self, n, seed, k, workers):
        tree = build_tree(clustered_clumps(n, seed=seed), tree_type="kd",
                          bucket_size=8)
        make, collect = knn_setup(k=min(k, tree.n_particles - 1))
        base = run_combination(tree, "up-and-down", make, collect)
        other = run_combination(tree, "up-and-down", make, collect,
                                backend="threads", workers=workers)
        assert_equivalent(base, other)

    @pytest.mark.slow
    @given(
        n=st.integers(50, 200),
        seed=st.integers(0, 2**31 - 1),
        radius=st.floats(0.1, 0.5),
    )
    @settings(max_examples=5, **HYPOTHESIS_COMMON)
    def test_processes_equals_serial(self, n, seed, radius):
        tree = build_tree(uniform_cube(n, seed=seed), tree_type="oct",
                          bucket_size=8)
        make = lambda t: CountInRadiusVisitor(t, radius)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = run_combination(tree, "transposed", make, collect)
        other = run_combination(tree, "transposed", make, collect,
                                backend="processes", workers=3)
        assert_equivalent(base, other)


class TestBatchedKernelsGolden:
    """Kernel-vs-scalar golden tests for repro.trees.kernels (PR 10).

    A pure-Python reference loop defines the accumulation semantics; the
    numpy fallback must match it bit-for-bit (np.add.at is sequential), and
    — where numba is installed — the JIT leg must match the numpy leg
    bit-for-bit too.
    """

    @staticmethod
    def _pairs(n=400, seed=0):
        rng = np.random.default_rng(seed)
        pos = rng.random((n, 3))
        rows = rng.integers(0, 64, size=n)
        center = rng.random((n, 3))
        mass = rng.random(n)
        # a few coincident pairs exercise the r2 == 0 guard
        center[::17] = pos[::17]
        return pos, rows, center, mass

    def test_mac_open_pairs_matches_scalar(self):
        from repro.geometry.box import point_box_distance_sq
        from repro.trees.kernels import mac_open_pairs

        rng = np.random.default_rng(1)
        lo = rng.random((300, 3))
        hi = lo + rng.random((300, 3))
        c = rng.random((300, 3)) * 2 - 0.5
        r2 = rng.random(300) * 0.2
        got = mac_open_pairs(lo, hi, c, r2)
        want = np.array([
            bool(point_box_distance_sq(lo[k], hi[k], c[k]) <= r2[k])
            for k in range(300)
        ])
        assert np.array_equal(got, want)

    def test_accumulate_monopole_matches_scalar_loop(self):
        from repro.trees.kernels import accumulate_monopole

        pos, rows, center, mass = self._pairs()
        G, eps = 1.3, 1e-3
        got = np.zeros((64, 3))
        accumulate_monopole(got, rows, pos, center, mass, G, eps)
        want = np.zeros((64, 3))
        eps2 = eps * eps
        for k in range(len(rows)):
            d = center[k] - pos[k]
            r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
            if r2 > 0.0:
                rs = r2 + eps2
                want[rows[k]] += (G * mass[k] / (rs * np.sqrt(rs))) * d
        assert got.tobytes() == want.tobytes()

    def test_accumulate_monopole_potential_matches_scalar_loop(self):
        from repro.trees.kernels import accumulate_monopole_potential

        pos, rows, center, mass = self._pairs(seed=3)
        got = np.zeros(64)
        accumulate_monopole_potential(got, rows, pos, center, mass, 1.0, 0.0)
        want = np.zeros(64)
        for k in range(len(rows)):
            d = center[k] - pos[k]
            r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
            if r2 > 0.0:
                want[rows[k]] += -mass[k] * (1.0 / np.sqrt(r2))
        assert got.tobytes() == want.tobytes()

    def test_accumulate_pp_matches_scalar_loop(self):
        from repro.trees.kernels import accumulate_pp, accumulate_pp_potential

        rng = np.random.default_rng(7)
        positions = rng.random((50, 3))
        masses = rng.random(50)
        t_rows = rng.integers(0, 50, size=600)
        s_rows = rng.integers(0, 50, size=600)
        s_rows[::13] = t_rows[::13]  # self pairs must contribute zero
        G, eps = 0.9, 1e-4
        got_a = np.zeros((50, 3))
        got_p = np.zeros(50)
        accumulate_pp(got_a, t_rows, s_rows, positions, masses, G, eps)
        accumulate_pp_potential(got_p, t_rows, s_rows, positions, masses, G, eps)
        want_a = np.zeros((50, 3))
        want_p = np.zeros(50)
        eps2 = eps * eps
        for k in range(len(t_rows)):
            d = positions[s_rows[k]] - positions[t_rows[k]]
            r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
            if r2 > 0.0:
                rs = r2 + eps2
                want_a[t_rows[k]] += (G * masses[s_rows[k]] / (rs * np.sqrt(rs))) * d
                want_p[t_rows[k]] += -G * masses[s_rows[k]] * (1.0 / np.sqrt(rs))
        assert got_a.tobytes() == want_a.tobytes()
        assert got_p.tobytes() == want_p.tobytes()

    def test_pair_dist_sq_and_scatter(self):
        from repro.trees.kernels import pair_dist_sq, scatter_add_1d

        rng = np.random.default_rng(9)
        positions = rng.random((40, 3))
        a = rng.integers(0, 40, size=200)
        b = rng.integers(0, 40, size=200)
        got = pair_dist_sq(positions, a, b)
        want = np.array([
            ((positions[a[k]] - positions[b[k]]) ** 2).tolist()
            for k in range(200)
        ]).sum(axis=1)
        np.testing.assert_allclose(got, want, rtol=0, atol=0)

        out = np.zeros(40)
        vals = rng.random(200)
        scatter_add_1d(out, a, vals)
        ref = np.zeros(40)
        np.add.at(ref, a, vals)
        assert out.tobytes() == ref.tobytes()

    def test_expand_pair_products_matches_nested_loops(self):
        from repro.trees.kernels import expand_pair_products

        ts, te = np.array([0, 5, 5, 9]), np.array([3, 5, 9, 12])
        ss, se = np.array([2, 0, 7, 0]), np.array([4, 3, 7, 1])
        t_rows, s_rows = expand_pair_products(ts, te, ss, se)
        want_t, want_s = [], []
        for p in range(len(ts)):
            for t in range(ts[p], te[p]):
                for s in range(ss[p], se[p]):
                    want_t.append(t)
                    want_s.append(s)
        assert t_rows.tolist() == want_t
        assert s_rows.tolist() == want_s

    def test_numba_leg_matches_numpy_leg(self, monkeypatch):
        """Where numba is installed, the JIT leg must equal the numpy
        fallback bit-for-bit (CI's build-equiv matrix runs both)."""
        from repro.trees import kernels

        if not kernels.HAVE_NUMBA:
            pytest.skip("numba not installed; numpy fallback is the only leg")

        pos, rows, center, mass = self._pairs(seed=5)

        def run():
            acc = np.zeros((64, 3))
            kernels.accumulate_monopole(acc, rows, pos, center, mass, 1.1, 1e-3)
            pot = np.zeros(64)
            kernels.accumulate_monopole_potential(pot, rows, pos, center, mass, 1.1, 1e-3)
            mac = kernels.mac_open_pairs(pos, pos + 0.1, center, mass * 0.1)
            return acc, pot, mac

        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        np_leg = run()
        monkeypatch.delenv("REPRO_NO_NUMBA")
        nb_leg = run()
        for a, b in zip(np_leg, nb_leg):
            assert a.tobytes() == b.tobytes()

    def test_batched_gravity_uses_kernels_consistently(self, small_tree):
        """End-to-end: the batched engine's gravity equals a re-run of
        itself (determinism) and the transposed engine within tolerance."""
        make, collect = gravity_setup(small_tree, with_potential=True)
        r1 = run_combination(small_tree, "batched", make, collect)
        r2 = run_combination(small_tree, "batched", make, collect)
        assert r1.outputs["accel"].tobytes() == r2.outputs["accel"].tobytes()
        rt = run_combination(small_tree, "transposed", make, collect)
        np.testing.assert_allclose(r1.outputs["accel"], rt.outputs["accel"],
                                   rtol=1e-12, atol=1e-14)
