"""Snapshot I/O corner cases, example importability, and misc coverage."""

import importlib.util
import pathlib

import numpy as np
import pytest

from repro.particles import (
    ParticleSet,
    load_particles,
    save_particles,
    uniform_cube,
)

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestSnapshotVersioning:
    def test_newer_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(path, field_position=np.zeros((2, 3)), __version__=np.int64(99))
        with pytest.raises(ValueError, match="newer"):
            load_particles(path)

    def test_versionless_file_accepted(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(path, field_position=np.zeros((2, 3)))
        p = load_particles(path)
        assert len(p) == 2

    def test_extra_fields_roundtrip(self, tmp_path):
        p = uniform_cube(20, seed=1)
        p.add_field("temperature", np.linspace(0, 1, 20))
        path = tmp_path / "t.npz"
        save_particles(path, p)
        q = load_particles(path)
        assert np.allclose(q.temperature, p.temperature)

    def test_orig_index_preserved(self, tmp_path):
        p = uniform_cube(30, seed=2).permuted(np.random.default_rng(0).permutation(30))
        path = tmp_path / "perm.npz"
        save_particles(path, p)
        q = load_particles(path)
        assert np.array_equal(q.orig_index, p.orig_index)


class TestExamplesImportable:
    """Every example is a valid module with a main() entry point (running
    them is exercised manually / by the docs; importing catches bitrot)."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "gravity_simulation",
            "sph_simulation",
            "planetesimal_disk",
            "distributed_scaling",
            "cosmology_analysis",
            "custom_disk_decomposition",
        ],
    )
    def test_example_has_main(self, name):
        path = REPO / "examples" / f"{name}.py"
        assert path.exists(), path
        spec = importlib.util.spec_from_file_location(f"example_{name}", path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert callable(module.main)


class TestParticleSetMisc:
    def test_iteration_yields_dicts(self):
        p = ParticleSet(np.zeros((3, 3)))
        rows = list(p)
        assert len(rows) == 3
        assert set(rows[0]) >= {"position", "velocity", "mass", "orig_index"}

    def test_total_mass(self):
        p = ParticleSet(np.zeros((4, 3)), mass=np.array([1.0, 2, 3, 4]))
        assert p.total_mass == 10.0

    def test_field_names_order_stable(self):
        p = ParticleSet(np.zeros((2, 3)), radius=np.ones(2))
        assert p.field_names[:3] == ("position", "velocity", "mass")

    def test_getitem(self):
        p = ParticleSet(np.zeros((2, 3)))
        assert p["mass"].shape == (2,)
        with pytest.raises(KeyError):
            p["nonexistent"]
