"""User-defined decomposition: radial disk sectors (paper §IV-B future work).

"A further improvement on this decomposition might be to divide the disk
radially into sectors.  With ParaTreeT's customizable modules, users can
develop performant codes for even highly irregular applications."

This example implements that suggestion through the public extension
points: a custom :class:`~repro.decomp.Decomposer` that cuts the disk into
annular sectors balanced in (weighted) particle count, registers it, runs
the planetesimal application with it, and compares its load balance against
the built-in octree and longest-dimension decompositions.

Run:  python examples/custom_disk_decomposition.py
"""

import numpy as np

from repro.decomp import (
    Decomposer,
    get_decomposer,
    imbalance,
    register_decomposer,
)
from repro.decomp.splitters import _weighted_contiguous_slices
from repro.particles import DiskParams, ParticleSet, keplerian_disk


class RadialSectorDecomposer(Decomposer):
    """Annulus x azimuthal-sector decomposition for flat disks.

    Particles are first cut into ``n_rings`` annuli at weighted radial
    quantiles; each annulus is then cut into sectors at weighted azimuthal
    quantiles.  Every piece is contiguous along the disk's natural
    coordinates, so orbital shear moves few particles between pieces per
    step — the property the paper's suggestion is after.
    """

    name = "radial-sectors"

    def __init__(self, n_rings: int = 2):
        self.n_rings = n_rings

    def assign(self, particles: ParticleSet, n_parts: int, weights=None):
        self._check(n_parts)
        n = len(particles)
        weights = np.ones(n) if weights is None else np.asarray(weights, float)
        x, y = particles.position[:, 0], particles.position[:, 1]
        radius = np.hypot(x, y)
        azimuth = np.arctan2(y, x)

        n_rings = min(self.n_rings, n_parts)
        ring_of = _weighted_contiguous_slices(np.argsort(radius), weights, n_rings)
        # Distribute the partition budget over rings proportionally to load.
        ring_weight = np.array([weights[ring_of == r].sum() for r in range(n_rings)])
        sectors = np.maximum(
            1, np.round(n_parts * ring_weight / ring_weight.sum()).astype(int)
        )
        while sectors.sum() > n_parts:
            sectors[np.argmax(sectors)] -= 1
        while sectors.sum() < n_parts:
            sectors[np.argmin(sectors)] += 1

        out = np.zeros(n, dtype=np.int64)
        base = 0
        for r in range(n_rings):
            idx = np.flatnonzero(ring_of == r)
            order = np.argsort(azimuth[idx])
            local = _weighted_contiguous_slices(order, weights[idx], int(sectors[r]))
            out[idx] = base + local
            base += int(sectors[r])
        return out


def main() -> None:
    register_decomposer(RadialSectorDecomposer.name, RadialSectorDecomposer(n_rings=3))

    disk = keplerian_disk(
        30_000, params=DiskParams(), seed=11, include_star=False, include_planet=False
    )
    n_parts = 24
    print(f"disk of {len(disk)} planetesimals, {n_parts} partitions\n")
    print(f"{'decomposition':>16} | {'count imbalance':>15} | {'pieces':>6}")
    results = {}
    for name in ("oct", "longest", "radial-sectors"):
        parts = get_decomposer(name).assign(disk, n_parts)
        counts = np.bincount(parts, minlength=n_parts)
        results[name] = imbalance(counts)
        print(f"{name:>16} | {results[name]:>15.3f} | {len(np.unique(parts)):>6}")

    print("\nradial sectors track the disk geometry: each piece is an")
    print("annular wedge, so Keplerian shear only moves particles between")
    print("azimuthal neighbours — compare the octree's cube-shaped pieces")
    print("that mix empty corners with dense mid-plane regions.")
    assert results["radial-sectors"] <= results["oct"]


if __name__ == "__main__":
    main()
