"""Fig 9 — time profile of CPU utilisation during the parallel traversal.

Regenerates the Projections-style view: per-activity utilisation over the
course of one simulated iteration at the paper's 1 536-core configuration
(64 processes x 24 workers).  The paper's observations:

* "the bulk of time is spent in node-local traversals";
* remote work appears as cache requests, cache insertions, and traversal
  resumptions spread through the iteration;
* "utilization remains high until the traversals finish toward the end".
"""


from repro.bench import build_gravity_workload, format_series, paper_reference, print_banner
from repro.cache import WAITFREE
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal, utilization_profile
from repro.runtime.tracing import activity_totals

# The paper profiles 1536 cores on an 80M-particle run; with our 25k-particle
# scale model the equivalent local/remote work balance sits at ~384 cores
# (grain per core scales with N / cores), so the profile is taken there.
N_PROC = 16
WORKERS = 24


_CACHE = {}


@perf_benchmark("des.fig9_profile", group="des",
                description="Fig 9 traced DES run with critical-path attribution")
def perf_fig9_profile(quick=False):
    workload = build_gravity_workload(
        distribution="clustered", n=6_000 if quick else 25_000,
        n_partitions=1024, n_subtrees=1024, shared_branch_levels=4,
    ).workload

    def run():
        r = simulate_traversal(
            workload, machine=STAMPEDE2, n_processes=N_PROC,
            workers_per_process=WORKERS, cache_model=WAITFREE,
            collect_trace=True, critical_path=True,
        )
        cp = r.critical_path
        return {
            "sim_time": r.time,
            "critical_path": {
                "makespan": cp.makespan,
                "components": {k: float(v) for k, v in cp.components.items()},
            },
        }

    return run


def _traced_run(fig9_workload):
    # Memoised on the workload the fixture actually handed us — the old
    # version ignored its argument and rebuilt a full-size workload, so
    # quick-scaled fixtures silently ran at n=25_000.
    key = id(fig9_workload)
    if key not in _CACHE:
        _CACHE[key] = simulate_traversal(
            fig9_workload.workload,
            machine=STAMPEDE2,
            n_processes=N_PROC,
            workers_per_process=WORKERS,
            cache_model=WAITFREE,
            collect_trace=True,
        )
    return _CACHE[key]


def test_fig9_profile(benchmark, fig9_workload):
    r = benchmark.pedantic(_traced_run, args=(fig9_workload,), rounds=1, iterations=1)
    edges, series = utilization_profile(r.trace, N_PROC * WORKERS, n_bins=10)
    print_banner(f"Fig 9: utilisation profile at {N_PROC * WORKERS} cores "
                 "(fraction of workers busy)")
    xs = [f"{100 * (i + 1) / 10:.0f}%" for i in range(10)]
    print(format_series("time", xs, {k: [round(v, 4) for v in vals] for k, vals in series.items()}))

    totals = activity_totals(r.trace)
    print("\ntotal busy seconds per activity:")
    for label, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        print(f"  {label:22s} {seconds:10.6f}")

    # All four paper activities occur.
    for label in paper_reference.FIG9_ACTIVITIES:
        assert label in totals, f"missing activity {label!r}"
    # Local traversals dominate ("due to node-wide tree aggregation and
    # spatial decomposition, the bulk of time is spent in node-local
    # traversals") — the largest activity, carrying about half the busy
    # time at this scale-equivalent core count.
    assert totals["local traversal"] == max(totals.values())
    assert totals["local traversal"] > 0.45 * sum(totals.values())
    # Utilisation is high early and collapses in the tail bins.
    overall = [sum(series[k][b] for k in series) for b in range(10)]
    assert max(overall[:3]) > 0.7
    assert overall[-1] < overall[0]


def test_fig9_benchmark_trace_overhead(benchmark, clustered_workload):
    """DES run with tracing on (the instrumented configuration)."""

    def run():
        return simulate_traversal(
            clustered_workload.workload,
            machine=STAMPEDE2,
            n_processes=16,
            workers_per_process=WORKERS,
            collect_trace=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.trace is not None
