"""Periodic-replica Barnes-Hut gravity."""

import itertools

import numpy as np
import pytest

from repro.apps.gravity import (
    compute_gravity,
    compute_gravity_periodic,
    minimum_image,
)
from repro.apps.gravity.kernels import pairwise_accel
from repro.particles import ParticleSet


class TestMinimumImage:
    def test_wraps_components(self):
        d = minimum_image(np.array([[0.9, -0.6, 0.2]]), 1.0)
        assert np.allclose(d, [[-0.1, 0.4, 0.2]])

    def test_identity_inside_half_box(self):
        d = np.array([[0.3, -0.4, 0.1]])
        assert np.allclose(minimum_image(d, 1.0), d)

    def test_scales_with_box(self):
        d = minimum_image(np.array([[7.0, 0, 0]]), 10.0)
        assert np.allclose(d, [[-3.0, 0, 0]])


class TestPeriodicGravity:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 1, (120, 3))
        return ParticleSet(pos, mass=np.full(120, 1 / 120))

    def _brute_replica(self, p, n_images, softening):
        acc = np.zeros((len(p), 3))
        for shift in itertools.product(range(-n_images, n_images + 1), repeat=3):
            acc += pairwise_accel(
                p.position, p.position + np.asarray(shift, float), p.mass,
                1.0, softening,
            )
        return acc

    def test_matches_brute_replica_sum(self, cloud):
        res = compute_gravity_periodic(
            cloud, 1.0, theta=0.3, softening=0.02, n_images=1,
            subtract_mean_field=False,
        )
        exact = self._brute_replica(cloud, 1, 0.02)
        rel = np.linalg.norm(res.accel - exact, axis=1) / np.maximum(
            np.linalg.norm(exact, axis=1), 1e-12
        )
        assert np.median(rel) < 5e-3

    def test_zero_images_equals_open_boundaries(self, cloud):
        per = compute_gravity_periodic(
            cloud, 1.0, theta=0.5, softening=0.02, n_images=0,
            subtract_mean_field=False,
        )
        open_res = compute_gravity(cloud, theta=0.5, softening=0.02)
        assert np.allclose(per.accel, open_res.accel, rtol=1e-9)
        assert per.n_image_cells == 1

    def test_mean_field_subtraction(self, cloud):
        res = compute_gravity_periodic(
            cloud, 1.0, theta=0.5, softening=0.02, n_images=1,
            subtract_mean_field=True,
        )
        assert np.allclose(res.accel.mean(axis=0), 0.0, atol=1e-12)

    def test_translational_invariance(self):
        """Shifting all particles by a lattice vector leaves the periodic
        forces unchanged (after consistent wrapping)."""
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 1, (80, 3))
        p1 = ParticleSet(pos, mass=np.full(80, 1 / 80))
        p2 = ParticleSet(pos + np.array([1.0, 0, 0]), mass=np.full(80, 1 / 80))
        a1 = compute_gravity_periodic(p1, 1.0, theta=0.3, softening=0.05,
                                      subtract_mean_field=False).accel
        a2 = compute_gravity_periodic(p2, 1.0, theta=0.3, softening=0.05,
                                      subtract_mean_field=False).accel
        assert np.allclose(a1, a2, rtol=1e-6, atol=1e-9)

    def test_engine_equivalence(self, cloud):
        a = compute_gravity_periodic(cloud, 1.0, theta=0.5, softening=0.05,
                                     traverser="transposed").accel
        b = compute_gravity_periodic(cloud, 1.0, theta=0.5, softening=0.05,
                                     traverser="per-bucket").accel
        assert np.allclose(a, b, rtol=1e-9)

    def test_validation(self, cloud):
        with pytest.raises(ValueError):
            compute_gravity_periodic(cloud, 0.0)
        with pytest.raises(ValueError):
            compute_gravity_periodic(cloud, 1.0, n_images=-1)

    def test_image_cell_count(self, cloud):
        res = compute_gravity_periodic(cloud, 1.0, n_images=1, theta=0.7,
                                       softening=0.05)
        assert res.n_image_cells == 27
