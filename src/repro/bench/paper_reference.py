"""The paper's reported numbers, for side-by-side printing in benchmarks.

Each constant cites the paper location it was read from.  EXPERIMENTS.md
records our measured counterparts next to these.
"""

# -- Table I -------------------------------------------------------------
TABLE1 = [
    # name, cores/node, cpu, clock GHz, comm layer
    ("Summit", 42, "POWER9", 3.1, "UCX"),
    ("Stampede2", 48, "Skylake", 2.1, "MPI"),
    ("Bridges2", 128, "EPYC 7742", 2.25, "Infiniband"),
]

# -- Fig 3 (§II-B-2) ------------------------------------------------------
#: Core count where the exclusive-write model starts to degrade.
FIG3_XWRITE_DEGRADES_CORES = 1536
#: Core count where the single-threaded (per-thread cache) model degrades.
FIG3_SEQUENTIAL_DEGRADES_CORES = 6144
FIG3_CORES_PER_PROCESS = 24  # "24 cores to a process, one thread per core"

# -- Fig 9 / §III-A --------------------------------------------------------
#: "ParaTreeT's built-in load re-balancers can reduce this simulation's
#: total runtime by 26%" (at 1536 cores).
LB_IMPROVEMENT_AT_1536 = 0.26
FIG9_ACTIVITIES = [
    "local traversal",
    "cache request",
    "cache insertion",
    "traversal resumption",
]

# -- Fig 10 (§III-A) --------------------------------------------------------
#: "ParaTreeT performs iterations 2-3x faster from 1 to 256 nodes."
FIG10_SPEEDUP_RANGE = (2.0, 3.0)
FIG10_WORKERS_PER_NODE = 84  # "84 workers per node" (42 cores, 2-way SMT)

# -- Table II (§III-A) --------------------------------------------------------
#: (ParaTreeT, ChaNGa) per CPU count: runtime s, L1D loads 1e9, L1D stores
#: 1e9, L1 load miss %, L2 load miss %, L3 load miss %, L1&L2 store miss %,
#: L3 store miss %.
TABLE2 = {
    1: ((9.2, 27, 9.0, 3.4, 1.9, 19, 0.036, 62), (16, 47, 21, 1.5, 3.5, 9.2, 0.020, 26)),
    2: ((5.2, 24, 6.7, 3.8, 1.0, 32, 0.050, 48), (8.0, 38, 15, 1.9, 3.0, 8.1, 0.030, 19)),
    4: ((2.8, 20, 4.1, 4.4, 1.5, 44, 0.12, 55), (4.3, 36, 12, 2.1, 2.9, 19, 0.046, 35)),
    8: ((1.6, 18, 3.2, 4.4, 2.1, 32, 0.24, 43), (2.5, 32, 11, 2.3, 3.7, 18, 0.091, 29)),
    16: ((1.1, 18, 3.0, 3.7, 3.6, 26, 0.33, 43), (1.6, 30, 10, 2.5, 4.6, 22, 0.13, 32)),
}
TABLE2_RUNTIME_RATIO = 9.2 / 16  # ParaTreeT / ChaNGa at 1 CPU ≈ 0.575

# -- Fig 11 (§III-B) -----------------------------------------------------------
#: "ParaTreeT yields a ~10x speedup from 48 to 3072 cores."
FIG11_SPEEDUP = 10.0
FIG11_CORE_RANGE = (48, 3072)

# -- Table III (§III-C) ----------------------------------------------------------
TABLE3 = [
    ("CentroidData.h", 50, "Define optimized Data functions"),
    ("GravityVisitor.h", 45, "Define Visitor functions"),
    ("GravityMain.C", 40, "Specify config, define traversal"),
]
TABLE3_TOTAL_GRAVITY_LOC = 135
TABLE3_SPH_LOC = 250
TABLE3_CHANGA_LOC = 4500

# -- Fig 12 (§IV-A) ---------------------------------------------------------------
FIG12_TOTAL_COLLISIONS = 258
FIG12_PLANET_A = 5.2
FIG12_DOMINANT_RESONANCE_A = 3.27  # "near the 2:1 resonance at 3.27 AU"

# -- Fig 13 (§IV-B) ----------------------------------------------------------------
#: "With octree decomposition, load imbalance ... is significant enough to
#: cancel the benefits of scaling for unfortunate configurations, like at
#: 192 cores.  The longest-dimension tree has better load balance and can
#: achieve greater performance, especially at scale."
FIG13_OCTREE_ANOMALY_CORES = 192
