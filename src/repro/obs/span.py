"""Span tracing: nested, labelled wall-clock (or simulated-clock) intervals.

A :class:`Span` is one timed interval with a name, a category, and free-form
``args``; spans opened while another span is active nest inside it.  The
:class:`Tracer` collects closed spans as Chrome trace-event dictionaries
(``ph == "X"`` complete events, timestamps in microseconds), which is what
Perfetto and ``chrome://tracing`` load directly — the same timeline view the
paper reads off Charm++ Projections (Fig 9, Fig 12).

Two clock domains are supported:

* real time — the default ``time.perf_counter`` clock, for live runs;
* simulated time — pass any zero-argument callable as ``clock`` (e.g. a DES
  ``Simulator``'s ``now``), or feed externally timed intervals through
  :meth:`Tracer.complete` / :meth:`Tracer.record_activity_trace`.

:data:`NULL_TRACER` is a shared no-op used when telemetry is disabled; its
``span()`` returns a singleton context manager so the disabled path costs
one attribute lookup and an empty ``with`` block.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .flight import NULL_FLIGHT

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: seconds -> trace-event microseconds
_US = 1e6


class Span:
    """One open interval; close it by exiting the ``with`` block."""

    __slots__ = ("tracer", "name", "cat", "args", "pid", "tid", "start", "end",
                 "depth", "span_id")

    def __init__(self, tracer: "Tracer", name: str, cat: str, pid: int, tid: int,
                 args: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.pid = pid
        self.tid = tid
        self.args = args
        self.start = 0.0
        self.end = 0.0
        self.depth = 0
        self.span_id = 0

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (valid once closed)."""
        return self.end - self.start

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.depth = len(tracer._stack)
        self.span_id = tracer._next_span_id()
        self.start = tracer.clock()
        tracer._stack.append(self)
        tracer.flight.record("span.open", name=self.name, span_id=self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = self.tracer.clock()
        stack = self.tracer._stack
        # Spans close LIFO; tolerate a missed close by unwinding to self.
        while stack:
            top = stack.pop()
            if top is self:
                break
        self.tracer._emit(
            self.name, self.cat, self.start, self.end - self.start,
            self.pid, self.tid,
            dict(self.args, depth=self.depth, span_id=self.span_id),
        )
        self.tracer.flight.record(
            "span.close", name=self.name, span_id=self.span_id,
            dur=self.end - self.start,
        )
        return False


class Tracer:
    """Collects spans as Chrome trace-event dicts (in event-close order)."""

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None,
                 pid: int = 0, tid: int = 0) -> None:
        self.clock = clock or time.perf_counter
        self.pid = pid
        self.tid = tid
        self.events: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._span_seq = 0
        #: flight recorder spans report into; :data:`NULL_FLIGHT` by default,
        #: replaced by :class:`~repro.obs.telemetry.Telemetry` when enabled.
        self.flight = NULL_FLIGHT

    def _next_span_id(self) -> int:
        self._span_seq += 1
        return self._span_seq

    def current_span_id(self) -> int | None:
        """ID of the innermost open span (for trace-context propagation:
        ``repro.exec`` stamps this into every ``exec.task`` event so worker
        spans nest under their pipeline phase across process boundaries)."""
        return self._stack[-1].span_id if self._stack else None

    # -- recording ----------------------------------------------------------
    def span(self, name: str, cat: str = "phase", pid: int | None = None,
             tid: int | None = None, **args: Any) -> Span:
        """Open a nested span: ``with tracer.span("tree_build"): ...``."""
        return Span(
            self, name, cat,
            self.pid if pid is None else pid,
            self.tid if tid is None else tid,
            args,
        )

    def complete(self, name: str, start: float, end: float, cat: str = "task",
                 pid: int | None = None, tid: int | None = None, **args: Any) -> None:
        """Record an externally timed interval (seconds) directly."""
        if end < start:
            raise ValueError("interval ends before it starts")
        self._emit(name, cat, start, end - start,
                   self.pid if pid is None else pid,
                   self.tid if tid is None else tid, args)

    def record_activity_trace(self, trace, cat: str = "des",
                              pid_offset: int = 0) -> int:
        """Convert a DES :class:`~repro.runtime.tracing.ActivityTrace` into
        trace events — one complete event per worker-task interval, with the
        simulated process as ``pid`` and the worker thread as ``tid``.  This
        reproduces the Projections-style Fig 9 timeline in Perfetto.

        Returns the number of events recorded.
        """
        for process, worker, start, end, label in trace.intervals:
            self._emit(label, cat, start, end - start, pid_offset + process, worker, {})
        return len(trace.intervals)

    def record_critical_path(self, report, pid: int = -1,
                             cat: str = "critical-path") -> int:
        """Render a :class:`~repro.perf.critical_path.CriticalPathReport`
        as its own highlighted track: one complete event per chain segment
        on a dedicated pid, so Perfetto shows the longest dependency chain
        as a contiguous lane above the worker timelines.

        Returns the number of events recorded.
        """
        for seg in report.segments:
            self._emit(seg.label, cat, seg.start, seg.duration, pid, 0,
                       {"kind": seg.kind, "resource": seg.resource})
        return len(report.segments)

    def record_recovery(self, report, pid: int = -2,
                        cat: str = "recovery") -> int:
        """Render a :class:`~repro.resilience.RecoveryReport` as its own
        track: per crash, one event for the restart window and (when it
        extends past the restart) one for the buddy-checkpoint fetch +
        deserialize, on a dedicated pid above the worker timelines.

        Returns the number of events recorded.
        """
        recorded = 0
        for ev in report.events:
            restart_end = ev.crashed_at + ev.restart_delay
            self._emit(
                f"restart p{ev.process}", cat, ev.crashed_at, ev.restart_delay,
                pid, 0,
                {"process": ev.process, "lost_cache_lines": ev.lost_cache_lines,
                 "lost_bytes": ev.lost_bytes, "tasks_reissued": ev.tasks_reissued,
                 "requests_in_flight": ev.requests_in_flight},
            )
            recorded += 1
            if ev.recovered_at is not None and ev.recovered_at > restart_end:
                label = (
                    f"checkpoint fetch p{ev.process}<-p{ev.buddy}"
                    if ev.buddy is not None
                    else f"checkpoint reload p{ev.process}"
                )
                self._emit(
                    label, cat, restart_end, ev.recovered_at - restart_end,
                    pid, 0,
                    {"checkpoint_bytes": ev.checkpoint_bytes,
                     "bytes_refetched": ev.bytes_refetched},
                )
                recorded += 1
        return recorded

    def _emit(self, name: str, cat: str, start: float, dur: float,
              pid: int, tid: int, args: dict[str, Any]) -> None:
        self.events.append({
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": start * _US,
            "dur": dur * _US,
            "pid": pid,
            "tid": tid,
            "args": args,
        })

    # -- inspection ---------------------------------------------------------
    @property
    def open_spans(self) -> int:
        return len(self._stack)

    def find(self, name: str) -> list[dict[str, Any]]:
        """All closed events with the given name (for tests/reports)."""
        return [e for e in self.events if e["name"] == name]

    def clear(self) -> None:
        self.events.clear()
        self._stack.clear()


class _NullSpan:
    """Shared do-nothing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: every call returns immediately, nothing is stored."""

    enabled = False
    events: tuple = ()
    open_spans = 0
    flight = NULL_FLIGHT

    def span(self, name: str, cat: str = "phase", pid: int | None = None,
             tid: int | None = None, **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def current_span_id(self) -> None:
        return None

    def complete(self, *args: Any, **kwargs: Any) -> None:
        pass

    def record_activity_trace(self, trace, cat: str = "des",
                              pid_offset: int = 0) -> int:
        return 0

    def record_critical_path(self, report, pid: int = -1,
                             cat: str = "critical-path") -> int:
        return 0

    def record_recovery(self, report, pid: int = -2,
                        cat: str = "recovery") -> int:
        return 0

    def find(self, name: str) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
