"""Differential equivalence tests: serial ≡ threads ≡ processes.

Every (engine × backend × worker-count) combination must produce
bit-identical outputs and equal interaction counts — see
``tests/harness/differential.py`` for the harness and the rationale for
excluding ``nodes_visited``.  The fast tests cover gravity, kNN, and SPH
across three worker counts; the ``slow``-marked matrix widens to every
engine, dataset, and tree type; hypothesis drives random trees and
visitors through the same assertions.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.apps.knn.knn import KNNVisitor, brute_force_knn, knn_search
from repro.apps.sph.density import compute_density_knn
from repro.decomp import SfcDecomposer, decompose
from repro.exec import get_backend
from repro.particles.generators import clustered_clumps, uniform_cube
from repro.trees import build_tree

from tests.harness.differential import (
    WORKER_COUNTS,
    CountInRadiusVisitor,
    assert_equivalent,
    brute_force_radius_counts,
    differential_matrix,
    run_combination,
)

HYPOTHESIS_COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.fixture(scope="module")
def small_tree():
    return build_tree(uniform_cube(500, seed=11), tree_type="oct", bucket_size=12)


@pytest.fixture(scope="module")
def clustered_tree():
    return build_tree(clustered_clumps(800, seed=5), tree_type="kd", bucket_size=10)


def gravity_setup(tree, with_potential=False, with_quadrupole=False):
    arrays = compute_centroid_arrays(
        tree, theta=0.6, with_quadrupole=with_quadrupole
    )

    def make(t):
        return GravityVisitor(t, arrays, G=1.0, softening=1e-3,
                              with_potential=with_potential)

    def collect(v):
        out = {"accel": v.accel}
        if v.potential is not None:
            out["potential"] = v.potential
        return out

    return make, collect


def knn_setup(k):
    def make(t):
        return KNNVisitor(t, k)

    def collect(v):
        # raw (unsorted) neighbour state: the strictest comparison
        return {"dist_sq": v.dist_sq, "index": v.index, "kth_sq": v.kth_sq}

    return make, collect


class TestGravityDifferential:
    def test_matrix_three_worker_counts(self, small_tree):
        make, collect = gravity_setup(small_tree)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=WORKER_COUNTS, expect_parallel=True)

    def test_matrix_with_recorder_and_potential(self, small_tree):
        make, collect = gravity_setup(small_tree, with_potential=True)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 4), record=True, expect_parallel=True)

    def test_matrix_with_decomposition_chunking(self, small_tree):
        """Partition-steered chunks (the decomp.partitions reuse path)."""
        pp = SfcDecomposer().assign(small_tree.particles, 4)
        decomp = decompose(small_tree, pp, n_subtrees=4)
        make, collect = gravity_setup(small_tree)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 4), decomposition=decomp,
                            expect_parallel=True)


class TestKNNDifferential:
    def test_matrix_three_worker_counts(self, small_tree):
        make, collect = knn_setup(k=6)
        base = differential_matrix(small_tree, "up-and-down", make, collect,
                                   workers=WORKER_COUNTS, expect_parallel=True)
        # and the serial oracle itself is right
        dist, _ = brute_force_knn(small_tree.particles.position, 6)
        order = np.argsort(base.outputs["dist_sq"], axis=1)
        rows = np.arange(small_tree.n_particles)[:, None]
        np.testing.assert_allclose(
            base.outputs["dist_sq"][rows, order], dist, rtol=0, atol=0
        )

    def test_public_api_backend_kwarg(self, small_tree):
        serial = knn_search(small_tree, 5)
        for backend in ("threads", "processes"):
            for w in (2, 4):
                with get_backend(backend, workers=w) as b:
                    res = knn_search(small_tree, 5, backend=b)
                assert np.array_equal(res.dist_sq, serial.dist_sq)
                assert np.array_equal(res.index, serial.index)


class TestSPHDifferential:
    def test_density_bit_identical(self, small_tree):
        serial = compute_density_knn(small_tree, k=16)
        for backend in ("threads", "processes"):
            for w in WORKER_COUNTS:
                with get_backend(backend, workers=w) as b:
                    par = compute_density_knn(small_tree, k=16, backend=b)
                label = f"{backend}/w{w}"
                assert np.array_equal(par.h, serial.h), label
                assert np.array_equal(par.density, serial.density), label
                assert np.array_equal(
                    par.neighbors.index, serial.neighbors.index
                ), label


class TestCountVisitorOracle:
    def test_matches_brute_force(self, small_tree):
        base = run_combination(
            small_tree, "transposed",
            lambda t: CountInRadiusVisitor(t, 0.15),
            lambda v: {"counts": v.counts},
        )
        oracle = brute_force_radius_counts(small_tree.particles.position, 0.15)
        assert np.array_equal(base.outputs["counts"], oracle)


@pytest.mark.slow
class TestFullMatrix:
    """The wide matrix: every engine × backend × worker count × dataset."""

    ENGINES = ("transposed", "per-bucket")

    @pytest.mark.parametrize("engine", ENGINES)
    def test_gravity_engines(self, engine, small_tree, clustered_tree):
        for tree in (small_tree, clustered_tree):
            make, collect = gravity_setup(tree, with_potential=True)
            differential_matrix(tree, engine, make, collect,
                                workers=(1, 2, 3, 4), record=True,
                                expect_parallel=True)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_count_visitor_engines(self, engine, clustered_tree):
        make = lambda t: CountInRadiusVisitor(t, 0.4)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = differential_matrix(clustered_tree, engine, make, collect,
                                   workers=(1, 2, 3, 4), record=True,
                                   expect_parallel=True)
        oracle = brute_force_radius_counts(clustered_tree.particles.position, 0.4)
        assert np.array_equal(base.outputs["counts"], oracle)

    def test_knn_wide(self, clustered_tree):
        make, collect = knn_setup(k=8)
        differential_matrix(clustered_tree, "up-and-down", make, collect,
                            workers=(1, 2, 3, 4, 7), expect_parallel=True)

    def test_gravity_quadrupole(self, small_tree):
        make, collect = gravity_setup(small_tree, with_quadrupole=True)
        differential_matrix(small_tree, "transposed", make, collect,
                            workers=(2, 3, 4), expect_parallel=True)


class TestHypothesisDifferential:
    """Random trees and visitors through the same equivalence assertions."""

    @given(
        n=st.integers(30, 150),
        seed=st.integers(0, 2**31 - 1),
        radius=st.floats(0.05, 0.6),
        bucket=st.integers(4, 24),
        tree_type=st.sampled_from(["oct", "kd"]),
        workers=st.sampled_from([2, 3]),
    )
    @settings(max_examples=15, **HYPOTHESIS_COMMON)
    def test_threads_equals_serial_and_brute_force(
        self, n, seed, radius, bucket, tree_type, workers
    ):
        tree = build_tree(uniform_cube(n, seed=seed), tree_type=tree_type,
                          bucket_size=bucket)
        make = lambda t: CountInRadiusVisitor(t, radius)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = run_combination(tree, "transposed", make, collect)
        other = run_combination(tree, "transposed", make, collect,
                                backend="threads", workers=workers)
        assert_equivalent(base, other)
        oracle = brute_force_radius_counts(tree.particles.position, radius)
        assert np.array_equal(base.outputs["counts"], oracle)

    @given(
        n=st.integers(40, 120),
        seed=st.integers(0, 2**31 - 1),
        k=st.integers(1, 10),
        workers=st.sampled_from([2, 4]),
    )
    @settings(max_examples=10, **HYPOTHESIS_COMMON)
    def test_knn_threads_equals_serial(self, n, seed, k, workers):
        tree = build_tree(clustered_clumps(n, seed=seed), tree_type="kd",
                          bucket_size=8)
        make, collect = knn_setup(k=min(k, tree.n_particles - 1))
        base = run_combination(tree, "up-and-down", make, collect)
        other = run_combination(tree, "up-and-down", make, collect,
                                backend="threads", workers=workers)
        assert_equivalent(base, other)

    @pytest.mark.slow
    @given(
        n=st.integers(50, 200),
        seed=st.integers(0, 2**31 - 1),
        radius=st.floats(0.1, 0.5),
    )
    @settings(max_examples=5, **HYPOTHESIS_COMMON)
    def test_processes_equals_serial(self, n, seed, radius):
        tree = build_tree(uniform_cube(n, seed=seed), tree_type="oct",
                          bucket_size=8)
        make = lambda t: CountInRadiusVisitor(t, radius)  # noqa: E731
        collect = lambda v: {"counts": v.counts}  # noqa: E731
        base = run_combination(tree, "transposed", make, collect)
        other = run_combination(tree, "transposed", make, collect,
                                backend="processes", workers=3)
        assert_equivalent(base, other)
