"""Command-line interface: quick runs of the built-in applications.

Examples::

    python -m repro gravity --n 50000 --theta 0.6
    python -m repro sph --n 8000 --k 32
    python -m repro knn --n 20000 --k 8
    python -m repro disk --n 5000 --steps 40
    python -m repro correlation --n 2000
    python -m repro scale --n 20000 --cores 24 96 384
    python -m repro scale --critical-path
    python -m repro bench list
    python -m repro bench run --quick
    python -m repro bench compare BENCH_baseline.json BENCH_new.json
    python -m repro gravity --iterations 4 --slo 'lat<5s,target=0.95' --flight flight.json
    python -m repro obs dump flight.json --last 20
    python -m repro top gravity --backend threads
    python -m repro serve --n 50000 --rate 2000 --socket serve.sock
    python -m repro serve --bench --overload 4 --slo 'lat<50ms,target=0.95'
    python -m repro serve --validate --bench-rate 400 --deadline-frac 0.25 --query-deadline 0
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np


def _add_common(p: argparse.ArgumentParser, n_default: int) -> None:
    p.add_argument("--n", type=int, default=n_default, help="particle count")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--bucket", type=int, default=16, help="leaf bucket size")
    p.add_argument("--tree", default="oct", choices=["oct", "kd", "longest"])
    p.add_argument("--tree-builder", default="recursive",
                   choices=["recursive", "linear"],
                   help="octree construction algorithm (byte-identical "
                        "output; 'linear' is the vectorised fast path)")


def _add_telemetry(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Chrome/Perfetto trace-event JSON")
    p.add_argument("--metrics", metavar="PATH", default=None,
                   help="write the metrics registry (.json, or .csv)")
    p.add_argument("--report", action="store_true",
                   help="print a telemetry summary after the run")
    p.add_argument("--flight", metavar="PATH", default=None,
                   help="arm the flight recorder: the event ring is dumped to "
                        "PATH on crash and at end of run "
                        "(inspect with `repro obs dump PATH`)")
    p.add_argument("--status-file", metavar="PATH", default=None,
                   help="append one JSON status snapshot per iteration "
                        "(watch live with `repro top PATH --follow`)")


def _add_slo(p: argparse.ArgumentParser) -> None:
    p.add_argument("--slo", metavar="SPEC", default=None,
                   help="latency objective over the run, e.g. "
                        "'lat<5ms,target=0.99,burn=1.5,window=0.25'; "
                        "a burn-rate violation exits 1 (bench-compare style)")
    p.add_argument("--slo-report", metavar="PATH", default=None,
                   help="write the SLO evaluation as JSON (repro.slo/1)")


def _evaluate_slo_from_args(args, samples) -> int:
    """Evaluate ``--slo`` over latency ``samples``; returns the exit code."""
    from .obs import evaluate_slo, parse_slo_spec

    try:
        spec = parse_slo_spec(args.slo)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = evaluate_slo(spec, samples)
    print(report.summary())
    if args.slo_report:
        try:
            report.write(args.slo_report)
            print(f"wrote SLO report to {args.slo_report}")
        except OSError as exc:
            print(f"error: could not write SLO report: {exc}", file=sys.stderr)
            return 2
    return 1 if report.violated else 0


def _enable_status_from_args(driver, args) -> None:
    if getattr(args, "status_file", None):
        driver.enable_status(args.status_file)


def _add_faults(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="inject faults, e.g. 'drop=0.05,fail=0.1,seed=3' "
             "(keys: drop, dup, jitter, fail, straggler=FxS, crash=P@R, "
             "seed, retries, timeout, backoff)")


def _add_critical_path(p: argparse.ArgumentParser) -> None:
    p.add_argument("--critical-path", action="store_true",
                   help="attribute simulated time to compute / cache-miss "
                        "latency / queueing / barrier wait along the DES's "
                        "longest dependency chain")


def _add_parallel(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", default="serial",
                   choices=["serial", "threads", "processes"],
                   help="execution backend for traversals; results are "
                        "bit-identical to serial for any worker count")
    p.add_argument("--workers", type=int, default=0, metavar="W",
                   help="worker count for --backend threads/processes "
                        "(0 = CPU count)")
    p.add_argument("--exec-faults", metavar="SPEC", default=None,
                   help="inject real faults into exec workers: "
                        "err=P,hang=P@SECS,kill=P,seed=N (kill SIGKILLs "
                        "process workers mid-chunk; supervision recovers)")
    p.add_argument("--chunk-deadline", type=float, default=None, metavar="SECS",
                   help="explicit per-chunk deadline; expired attempts are "
                        "abandoned and re-dispatched (default: seeded from "
                        "observed chunk latency)")
    p.add_argument("--max-chunk-retries", type=int, default=None, metavar="K",
                   help="re-dispatch budget per chunk before it is "
                        "quarantined and run serially in-parent (default 3)")
    p.add_argument("--no-supervise", action="store_true",
                   help="disable supervised dispatch (deadlines, retry, "
                        "pool rebuild); a worker death then kills the run")


def _enable_parallel_from_args(driver, args) -> None:
    """Attach the requested execution backend to a Driver run."""
    if getattr(args, "backend", "serial") == "serial":
        return
    supervise = None  # driver default: on
    if getattr(args, "no_supervise", False):
        supervise = False
    elif (getattr(args, "chunk_deadline", None) is not None
            or getattr(args, "max_chunk_retries", None) is not None):
        from .exec import SupervisorConfig

        overrides = {}
        if args.chunk_deadline is not None:
            overrides["chunk_deadline"] = args.chunk_deadline
        if args.max_chunk_retries is not None:
            overrides["max_chunk_retries"] = args.max_chunk_retries
        supervise = SupervisorConfig(**overrides)
    try:
        driver.enable_parallel(
            args.backend, workers=args.workers or None,
            supervise=supervise,
            exec_faults=getattr(args, "exec_faults", None),
        )
    except ValueError as exc:  # bad --exec-faults/--chunk-deadline spec
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _print_exec_health(driver) -> None:
    """One line per degraded iteration: what supervision had to do."""
    for rep in driver.reports:
        if rep.exec_mode != "degraded" or not rep.supervision:
            continue
        acts = ", ".join(f"{k}={v}" for k, v in rep.supervision.items() if v)
        print(f"iteration {rep.iteration}: exec degraded ({acts})")


def _add_checkpoint(p: argparse.ArgumentParser) -> None:
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                   help="write a checkpoint every K completed iterations "
                        "(0 = off); resume with `repro resume <checkpoint>`")
    p.add_argument("--checkpoint-dir", default="checkpoints", metavar="DIR",
                   help="directory for ckpt_*.npz files (default: checkpoints)")
    p.add_argument("--save-state", metavar="PATH", default=None,
                   help="write the final particle state (npz snapshot) — "
                        "compare runs with `repro audit A B`")


def _save_state(driver, path: str) -> None:
    """Final particle state as a checksummed snapshot; accelerations ride
    along as an extra field so audits compare the physics, not just the
    positions."""
    from .particles import save_particles

    p = driver.particles.copy()
    acc = getattr(driver, "accelerations", None)
    if acc is not None and not p.has_field("acceleration"):
        p.add_field("acceleration", np.ascontiguousarray(acc))
    save_particles(path, p)
    print(f"wrote final state ({len(p)} particles) to {path}")


def _print_recovery_dict(rec: dict, indent: str = "  ") -> None:
    print(f"{indent}recovery: {rec['n_crashes']} crash(es), "
          f"lost {rec['lost_cache_lines']} cache lines "
          f"({rec['lost_bytes']:.0f} B), "
          f"refetched {rec['bytes_refetched']:.0f} B from buddies, "
          f"{rec['recovery_time'] * 1e3:.3f} ms recovering")


def _print_critical_path_dict(cp: dict, indent: str = "  ") -> None:
    """Render the ``critical_path`` sub-dict of a comm-sim summary."""
    from .perf import format_components

    print(f"{indent}critical path: "
          + format_components(cp.get("components", {}), cp.get("makespan")))
    top = sorted(cp.get("by_label", {}).items(), key=lambda kv: -kv[1])[:4]
    makespan = cp.get("makespan") or 1.0
    for label, secs in top:
        print(f"{indent}  {label:<26} {secs * 1e3:10.3f} ms  {secs / makespan:6.1%}")


def _fault_plan_from_args(args):
    """Parse ``--faults`` into a FaultPlan (None when the flag is absent)."""
    if not getattr(args, "faults", None):
        return None
    from .faults import parse_fault_spec

    return parse_fault_spec(args.faults)


def _chaos_probe(tree, plan, n_processes: int = 4) -> None:
    """Drive the threaded software cache over ``tree`` under ``plan``:
    every placeholder is filled despite transient failures, and the
    wait-free validity invariant is checked at the end.  Used by the
    subcommands whose main computation has no distributed phase."""
    from .cache import SharedTreeCache
    from .decomp import SfcDecomposer, decompose
    from .faults import as_injector

    parts = SfcDecomposer().assign(tree.particles, n_processes)
    dec = decompose(tree, parts, n_subtrees=2 * n_processes)
    injector = as_injector(plan)
    cache = SharedTreeCache(
        tree, dec.node_process(), process=0, nodes_per_request=2,
        injector=injector,
    )
    # Fill every reachable placeholder, retrying over transient failures.
    for _ in range(10_000):
        pending = []
        stack = [cache.root]
        while stack:
            e = stack.pop()
            if e.is_placeholder:
                continue
            for i, c in enumerate(e.children):
                if c.is_placeholder:
                    pending.append((e, i))
                else:
                    stack.append(c)
        if not pending:
            break
        for parent, slot in pending:
            cache.request_fill(parent, slot)
    cache.validate()
    print(f"fault probe: cache valid after chaos fill "
          f"(requests={cache.requests_sent}, fills={cache.fills_applied}, "
          f"failed={cache.fills_failed}, plan='{plan.describe()}')")


def _telemetry_from_args(args):
    """Install a live telemetry session when any telemetry flag was given."""
    if not (args.trace or args.metrics or args.report
            or getattr(args, "flight", None)):
        return None
    from .obs import Telemetry, set_telemetry

    telemetry = Telemetry()
    set_telemetry(telemetry)
    if getattr(args, "flight", None):
        telemetry.flight.arm(args.flight)
    return telemetry


def _finish_telemetry(telemetry, args) -> None:
    if telemetry is None:
        return
    from .obs import console_report, set_telemetry, write_chrome_trace
    from .obs import write_metrics_csv, write_metrics_json

    set_telemetry(None)
    try:
        if args.trace:
            n = write_chrome_trace(telemetry, args.trace, command=args.command)
            print(f"wrote {n} trace events to {args.trace} (open in ui.perfetto.dev)")
        if args.metrics:
            if args.metrics.endswith(".csv"):
                n = write_metrics_csv(telemetry, args.metrics)
            else:
                n = write_metrics_json(telemetry, args.metrics)
            print(f"wrote {n} metrics to {args.metrics}")
        if getattr(args, "flight", None):
            telemetry.flight.dump(args.flight, reason="end-of-run")
            print(f"wrote flight recording ({len(telemetry.flight)} events, "
                  f"{telemetry.flight.dropped} dropped) to {args.flight}")
    except OSError as exc:
        print(f"error: could not write telemetry output: {exc}", file=sys.stderr)
    if args.report:
        print(console_report(telemetry), end="")


def _run_driver_guarded(driver, args, telemetry, resume_from=None):
    """Run the driver with SIGTERM/SIGINT converted into a graceful stop.

    Returns None when the run completed normally.  On an interrupt the
    armed flight recorder has already dumped (Driver.run's crash hook);
    this writes a final checkpoint when checkpointing is enabled,
    flushes telemetry, and returns the ``128 + N`` exit code for the
    command to propagate — the interrupted run stays resumable.
    """
    from .resilience import RunInterrupted, graceful_interrupts

    try:
        with graceful_interrupts():
            driver.run(resume_from=resume_from)
        return None
    except RunInterrupted as exc:
        done = len(driver.reports)
        msg = (f"interrupted by {exc.signal_name} after {done} "
               f"completed iteration(s)")
        path = driver.write_final_checkpoint()
        if path:
            msg += f"; wrote checkpoint {path} (resume with `repro resume {path}`)"
        print(msg, file=sys.stderr)
        _finish_telemetry(telemetry, args)
        return exc.exit_code


def cmd_gravity(args) -> int:
    from .apps.gravity import compute_gravity, direct_accelerations, acceleration_error
    from .particles import clustered_clumps

    p = clustered_clumps(args.n, seed=args.seed)
    telemetry = _telemetry_from_args(args)
    fault_plan = _fault_plan_from_args(args)
    wants_driver = (
        telemetry is not None or fault_plan is not None or args.critical_path
        or args.checkpoint_every or args.save_state or args.dt > 0
        or args.iterations > 1 or args.backend != "serial"
        or args.slo or args.status_file
    )
    if wants_driver:
        # Run the full Driver pipeline so the trace shows all seven
        # ``run_iteration`` phases (splitters ... rebalance), not just the
        # bare traversal.  Fault runs need the Driver too: the fault plan
        # replays each iteration's traversal through the DES comm model.
        # Checkpointing/resume is Driver-only as well.
        from .apps.gravity import GravityDriver
        from .core import Configuration

        cfg = Configuration(
            num_iterations=args.iterations, tree_type=args.tree,
            bucket_size=args.bucket, traverser=args.traverser,
            tree_builder=args.tree_builder,
        )

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        driver = Main(cfg, theta=args.theta, softening=args.softening,
                      dt=args.dt, with_quadrupole=args.quadrupole)
        _enable_parallel_from_args(driver, args)
        _enable_status_from_args(driver, args)
        if telemetry is not None:
            driver.enable_telemetry(telemetry)
        if fault_plan is not None:
            driver.enable_faults(fault_plan)
        if args.critical_path:
            driver.enable_critical_path()
        if args.checkpoint_every:
            driver.enable_checkpointing(
                args.checkpoint_dir, every=args.checkpoint_every,
                app="gravity",
                app_config={"theta": args.theta, "softening": args.softening,
                            "dt": args.dt, "with_quadrupole": args.quadrupole},
            )
        t0 = time.time()
        try:
            rc_signal = _run_driver_guarded(driver, args, telemetry)
        finally:
            driver.disable_parallel()
        if rc_signal is not None:
            return rc_signal
        print(f"traversal: {time.time() - t0:.2f}s  {driver.last_stats.as_dict()}")
        _print_exec_health(driver)
        for rep in driver.reports:
            cs = rep.comm_sim
            if not cs:
                continue
            if cs.get("failed"):
                print(f"iteration {rep.iteration}: comm sim FAILED "
                      f"({cs.get('reason')}, process={cs.get('process')}, "
                      f"attempts={cs.get('attempts')}) counters={cs.get('counters')}")
            else:
                faults = f" faults={cs['faults']}" if cs.get("faults") else ""
                print(f"iteration {rep.iteration}: comm sim {cs['time'] * 1e3:.3f} ms"
                      + faults)
                if cs.get("recovery"):
                    _print_recovery_dict(cs["recovery"])
                if cs.get("critical_path"):
                    _print_critical_path_dict(cs["critical_path"])
        if args.check and args.n <= 20_000:
            exact = direct_accelerations(driver.particles, softening=args.softening)
            print("error vs direct sum: "
                  f"{acceleration_error(driver.accelerations, exact)}")
        if args.save_state:
            _save_state(driver, args.save_state)
        rc = 0
        if args.slo:
            from .obs import samples_from_reports

            rc = _evaluate_slo_from_args(args, samples_from_reports(driver.reports))
        _finish_telemetry(telemetry, args)
        return rc
    t0 = time.time()
    res = compute_gravity(
        p, theta=args.theta, softening=args.softening,
        tree_type=args.tree, bucket_size=args.bucket,
        traverser=args.traverser, with_quadrupole=args.quadrupole,
        tree_builder=args.tree_builder,
    )
    print(f"traversal: {time.time() - t0:.2f}s  {res.stats.as_dict()}")
    if args.check and args.n <= 20_000:
        exact = direct_accelerations(p, softening=args.softening)
        print(f"error vs direct sum: {acceleration_error(res.accel, exact)}")
    return 0


def cmd_sph(args) -> int:
    from .apps.sph import compute_density_knn, gadget_style_density
    from .particles import uniform_cube
    from .trees import build_tree

    telemetry = _telemetry_from_args(args)
    p = uniform_cube(args.n, seed=args.seed)
    fault_plan = _fault_plan_from_args(args)
    if (args.checkpoint_every or args.save_state or args.dt > 0
            or args.iterations > 1 or args.backend != "serial"):
        from .apps.sph import SPHDriver
        from .core import Configuration

        cfg = Configuration(num_iterations=args.iterations, tree_type=args.tree,
                            bucket_size=args.bucket,
                            tree_builder=args.tree_builder)

        class Main(SPHDriver):
            def create_particles(self, config):
                return p

        driver = Main(cfg, k_neighbors=args.k, dt=args.dt)
        _enable_parallel_from_args(driver, args)
        _enable_status_from_args(driver, args)
        if telemetry is not None:
            driver.enable_telemetry(telemetry)
        if fault_plan is not None:
            driver.enable_faults(fault_plan)
        if args.checkpoint_every:
            driver.enable_checkpointing(
                args.checkpoint_dir, every=args.checkpoint_every,
                app="sph", app_config={"k_neighbors": args.k, "dt": args.dt},
            )
        t0 = time.time()
        try:
            rc_signal = _run_driver_guarded(driver, args, telemetry)
        finally:
            driver.disable_parallel()
        if rc_signal is not None:
            return rc_signal
        print(f"{args.iterations} iteration(s) in {time.time() - t0:.2f}s; "
              f"median rho {np.median(driver.state.density):.4f}")
        _print_exec_health(driver)
        if args.save_state:
            _save_state(driver, args.save_state)
        _finish_telemetry(telemetry, args)
        return 0
    tree = build_tree(p, tree_type=args.tree, bucket_size=args.bucket,
                      builder=args.tree_builder)
    if fault_plan is not None:
        _chaos_probe(tree, fault_plan)
    st = compute_density_knn(tree, k=args.k)
    print(f"kNN density: median rho {np.median(st.density):.4f}, "
          f"pp={st.stats.pp_interactions:,}")
    if args.baseline:
        gd = gadget_style_density(tree, k=args.k)
        print(f"gadget-style: {gd.n_rounds} rounds, pp={gd.stats.pp_interactions:,} "
              f"({gd.stats.pp_interactions / st.stats.pp_interactions:.2f}x)")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_knn(args) -> int:
    from .apps.knn import knn_search
    from .particles import clustered_clumps
    from .trees import build_tree

    telemetry = _telemetry_from_args(args)
    p = clustered_clumps(args.n, seed=args.seed)
    fault_plan = _fault_plan_from_args(args)
    if args.checkpoint_every or args.save_state or args.backend != "serial":
        from .apps.knn import KNNDriver
        from .core import Configuration

        cfg = Configuration(num_iterations=args.iterations, tree_type=args.tree,
                            bucket_size=args.bucket,
                            tree_builder=args.tree_builder)

        class Main(KNNDriver):
            def create_particles(self, config):
                return p

        driver = Main(cfg, k=args.k)
        _enable_parallel_from_args(driver, args)
        _enable_status_from_args(driver, args)
        if telemetry is not None:
            driver.enable_telemetry(telemetry)
        if fault_plan is not None:
            driver.enable_faults(fault_plan)
        if args.checkpoint_every:
            driver.enable_checkpointing(
                args.checkpoint_dir, every=args.checkpoint_every,
                app="knn", app_config={"k": args.k},
            )
        t0 = time.time()
        try:
            rc_signal = _run_driver_guarded(driver, args, telemetry)
        finally:
            driver.disable_parallel()
        if rc_signal is not None:
            return rc_signal
        print(f"kNN k={args.k}: {time.time() - t0:.2f}s, "
              f"median d_k={np.median(driver.kth_distances()):.4f}")
        _print_exec_health(driver)
        if args.save_state:
            _save_state(driver, args.save_state)
        _finish_telemetry(telemetry, args)
        return 0
    tree = build_tree(p, tree_type=args.tree, bucket_size=args.bucket,
                      builder=args.tree_builder)
    if fault_plan is not None:
        _chaos_probe(tree, fault_plan)
    t0 = time.time()
    res = knn_search(tree, k=args.k)
    print(f"kNN k={args.k}: {time.time() - t0:.2f}s, "
          f"median d_k={np.median(np.sqrt(res.dist_sq[:, -1])):.4f}, "
          f"pp={res.stats.pp_interactions:,} (brute force would be {args.n**2:,})")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_disk(args) -> int:
    from .apps.collision import PlanetesimalDriver
    from .core import Configuration
    from .particles import DiskParams, keplerian_disk

    params = DiskParams(planetesimal_radius=args.radius)

    class Main(PlanetesimalDriver):
        def create_particles(self, config):
            return keplerian_disk(args.n, params=params, seed=args.seed)

    cfg = Configuration(num_iterations=args.steps, tree_type="longest",
                        decomp_type="longest", num_partitions=16, num_subtrees=16)
    d = Main(cfg, dt=args.dt)
    _enable_parallel_from_args(d, args)
    _enable_status_from_args(d, args)
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        d.enable_telemetry(telemetry)
    fault_plan = _fault_plan_from_args(args)
    if fault_plan is not None:
        d.enable_faults(fault_plan)
    if args.critical_path:
        d.enable_critical_path()
    if args.checkpoint_every:
        d.enable_checkpointing(
            args.checkpoint_dir, every=args.checkpoint_every,
            app="disk", app_config={"dt": args.dt},
        )
    t0 = time.time()
    try:
        rc_signal = _run_driver_guarded(d, args, telemetry)
    finally:
        d.disable_parallel()
    if rc_signal is not None:
        return rc_signal
    print(f"{args.steps} steps in {time.time() - t0:.1f}s; "
          f"collisions recorded: {len(d.log)}")
    _print_exec_health(d)
    if args.save_state:
        _save_state(d, args.save_state)
    if args.critical_path:
        with_cp = [r for r in d.reports
                   if r.comm_sim and r.comm_sim.get("critical_path")]
        if with_cp:
            rep = with_cp[-1]
            print(f"iteration {rep.iteration} comm sim "
                  f"{rep.comm_sim['time'] * 1e3:.3f} ms")
            _print_critical_path_dict(rep.comm_sim["critical_path"])
    _finish_telemetry(telemetry, args)
    return 0


def cmd_correlation(args) -> int:
    from .apps.correlation import two_point_correlation
    from .particles import clustered_clumps

    telemetry = _telemetry_from_args(args)
    particles = clustered_clumps(args.n, seed=args.seed)
    fault_plan = _fault_plan_from_args(args)
    if fault_plan is not None:
        from .trees import build_tree

        _chaos_probe(build_tree(particles, tree_type="oct", bucket_size=16),
                     fault_plan)
    if args.checkpoint_every or args.save_state or args.backend != "serial":
        from .apps.correlation import CorrelationDriver
        from .core import Configuration

        class Main(CorrelationDriver):
            def create_particles(self, config):
                return particles

        driver = Main(Configuration(num_iterations=1),
                      rmin=args.rmin, rmax=args.rmax, bins=args.bins)
        _enable_parallel_from_args(driver, args)
        _enable_status_from_args(driver, args)
        if telemetry is not None:
            driver.enable_telemetry(telemetry)
        if args.checkpoint_every:
            driver.enable_checkpointing(
                args.checkpoint_dir, every=args.checkpoint_every,
                app="correlation",
                app_config={"rmin": args.rmin, "rmax": args.rmax,
                            "bins": args.bins},
            )
        try:
            rc_signal = _run_driver_guarded(driver, args, telemetry)
        finally:
            driver.disable_parallel()
        if rc_signal is not None:
            return rc_signal
        _print_exec_health(driver)
        res, edges = driver.result, driver.edges
        print(f"{'r_lo':>8} {'r_hi':>8} {'xi':>10} {'DD':>10}")
        for i in range(len(res.xi)):
            print(f"{edges[i]:8.4f} {edges[i + 1]:8.4f} "
                  f"{res.xi[i]:10.3f} {res.dd[i]:10,}")
        if args.save_state:
            _save_state(driver, args.save_state)
        _finish_telemetry(telemetry, args)
        return 0
    edges = np.geomspace(args.rmin, args.rmax, args.bins + 1)
    res = two_point_correlation(particles, edges)
    print(f"{'r_lo':>8} {'r_hi':>8} {'xi':>10} {'DD':>10}")
    for i in range(len(res.xi)):
        print(f"{edges[i]:8.4f} {edges[i + 1]:8.4f} {res.xi[i]:10.3f} {res.dd[i]:10,}")
    _finish_telemetry(telemetry, args)
    return 0


def cmd_resume(args) -> int:
    from .resilience import CheckpointError, audit_restore, load_checkpoint
    from .resilience.resume import driver_from_checkpoint

    try:
        ckpt = load_checkpoint(args.checkpoint)
        driver = driver_from_checkpoint(ckpt)
    except (CheckpointError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.iterations is not None:
        driver.config.num_iterations = args.iterations
    _enable_parallel_from_args(driver, args)
    _enable_status_from_args(driver, args)
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        driver.enable_telemetry(telemetry)
    fault_plan = _fault_plan_from_args(args)
    if fault_plan is not None:
        driver.enable_faults(fault_plan)
    elif ckpt.fault_spec:
        # A resumed run replays the checkpointed fault plan: its PRNG
        # stream positions are part of the restored state.
        driver.enable_faults(ckpt.fault_spec)
    if args.checkpoint_every:
        driver.enable_checkpointing(
            args.checkpoint_dir, every=args.checkpoint_every,
            app=ckpt.app, app_config=ckpt.app_config,
        )
    t0 = time.time()
    try:
        rc_signal = _run_driver_guarded(driver, args, telemetry, resume_from=ckpt)
    finally:
        driver.disable_parallel()
    if rc_signal is not None:
        return rc_signal
    ran = max(driver.config.num_iterations - ckpt.iteration, 0)
    print(f"resumed {ckpt.app or 'run'} at iteration {ckpt.iteration}: "
          f"ran {ran} more iteration(s) in {time.time() - t0:.2f}s")
    _print_exec_health(driver)
    problems = audit_restore(driver)
    if problems:
        for prob in problems:
            print(f"audit: {prob}", file=sys.stderr)
        _finish_telemetry(telemetry, args)
        return 1
    print("consistency audit passed")
    if args.save_state:
        _save_state(driver, args.save_state)
    _finish_telemetry(telemetry, args)
    return 0


def cmd_audit(args) -> int:
    if args.shm:
        from .exec import sweep_orphan_segments

        records = sweep_orphan_segments(
            prefix=args.shm_prefix, dry_run=args.dry_run
        )
        orphans = [r for r in records if r["orphan"]]
        live = len(records) - len(orphans)
        for r in orphans:
            verb = "would remove" if args.dry_run else (
                "removed" if r["removed"] else "failed to remove")
            print(f"  {verb} {r['name']} "
                  f"({r['bytes']:,} B, dead pid {r['pid']}, "
                  f"generation {r['generation']})")
        freed = sum(r["bytes"] for r in orphans if r["removed"] or args.dry_run)
        print(f"shm sweep: {len(orphans)} orphan segment(s) "
              f"({freed:,} B), {live} owned by live processes (kept)")
        return 0
    if args.a is None or args.b is None:
        print("error: audit needs two state archives (or --shm)",
              file=sys.stderr)
        return 2
    from .resilience import CheckpointError, audit_state_files

    try:
        problems = audit_state_files(args.a, args.b)
    except (CheckpointError, OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if problems:
        print(f"{len(problems)} difference(s) between {args.a} and {args.b}:")
        for prob in problems:
            print(f"  {prob}")
        return 1
    print(f"bit-identical: {args.a} == {args.b}")
    return 0


def cmd_scale(args) -> int:
    from .bench import build_gravity_workload
    from .cache import CACHE_MODELS
    from .runtime import MACHINES, simulate_traversal

    telemetry = _telemetry_from_args(args)
    machine = MACHINES[args.machine]
    gw = build_gravity_workload(distribution="clustered", n=args.n,
                                n_partitions=args.partitions,
                                n_subtrees=args.partitions, seed=args.seed)
    model = CACHE_MODELS[args.cache]
    workers = args.workers or machine.workers_per_node
    fault_plan = _fault_plan_from_args(args)
    print(f"{args.machine}, {workers} workers/process, cache={args.cache}"
          + (f", faults='{fault_plan.describe()}'" if fault_plan else ""))
    from .faults import IterationFailure

    slo_samples: list = []
    for cores in args.cores:
        try:
            r = simulate_traversal(gw.workload, machine=machine,
                                   n_processes=max(cores // workers, 1),
                                   workers_per_process=workers, cache_model=model,
                                   faults=fault_plan,
                                   critical_path=args.critical_path,
                                   collect_trace=args.critical_path
                                   or bool(args.slo))
        except IterationFailure as exc:
            print(f"  {cores:>7} cores: FAILED ({exc}) counters={exc.counters.to_dict()}")
            continue
        extra = f", faults={r.faults.to_dict()}" if r.faults is not None else ""
        print(f"  {cores:>7} cores: {r.time * 1e3:9.3f} ms, "
              f"{r.requests:,} requests, {r.bytes_moved / 1e6:.1f} MB{extra}")
        if r.recovery is not None:
            _print_recovery_dict(r.recovery.to_dict(), indent="    ")
        if r.critical_path is not None:
            for line in r.critical_path.format().splitlines():
                print(f"    {line}")
        if args.slo:
            from .obs import samples_from_sim

            slo_samples.extend(samples_from_sim(r))
    rc = 0
    if args.slo:
        # One objective over the whole sweep: every simulated task interval
        # from every core count counts as a latency sample.
        rc = _evaluate_slo_from_args(args, slo_samples)
    _finish_telemetry(telemetry, args)
    return rc


def cmd_bench(args) -> int:
    from .perf import (
        compare_reports,
        discover,
        format_report,
        get_registry,
        load_report,
        run_suite,
        write_report,
    )

    if args.bench_cmd == "list":
        discover()
        registry = get_registry()
        for d in registry:
            print(f"{d.id:<28} [{d.group:<8}] {d.description}")
        print(f"{len(registry)} benchmarks registered")
        return 0

    if args.bench_cmd == "run":
        report = run_suite(
            args.ids or None, quick=args.quick, repeats=args.repeats,
            progress=None if args.no_progress else print,
        )
        path = write_report(report, path=args.output,
                            artifacts_dir=args.artifacts)
        print(format_report(report))
        print(f"wrote {path}")
        return 1 if any("error" in r for r in report["results"]) else 0

    if args.bench_cmd == "compare":
        loaded = {}
        for role, path in (("baseline", args.baseline), ("new", args.new)):
            try:
                loaded[role] = load_report(path)
            except FileNotFoundError:
                print(f"error: {role} BENCH file not found: {path}",
                      file=sys.stderr)
                return 2
            except OSError as exc:
                print(f"error: cannot read {role} BENCH file {path}: {exc}",
                      file=sys.stderr)
                return 2
            except ValueError as exc:
                hint = (" — was it written by a newer build? re-run "
                        "`repro bench run` with this build to regenerate it"
                        if "schema_version" in str(exc) else "")
                print(f"error: {role} BENCH file: {exc}{hint}",
                      file=sys.stderr)
                return 2
        base, new = loaded["baseline"], loaded["new"]
        result = compare_reports(base, new, rel_floor=args.rel_floor,
                                 k_iqr=args.k_iqr)
        if args.markdown:
            out = result.markdown()
            if args.markdown == "-":
                print(out, end="")
            else:
                with open(args.markdown, "w") as fh:
                    fh.write(out)
                print(f"wrote markdown report to {args.markdown}")
        print(result.format())
        return 0 if args.warn_only else result.exit_code

    # report
    try:
        doc = load_report(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(doc))
    return 0


def cmd_obs(args) -> int:
    from .obs import (
        format_flight_dump,
        load_flight_dump,
        validate_attribution,
        validate_chrome_trace,
        validate_flight_dump,
        validate_slo_report,
    )
    from .obs.validate import load_json

    if args.obs_cmd == "dump":
        try:
            doc = load_flight_dump(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_flight_dump(doc, last=args.last))
        problems = validate_flight_dump(doc)
        if problems:
            for prob in problems:
                print(f"problem: {prob}", file=sys.stderr)
            return 1
        return 0

    try:
        doc = load_json(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.obs_cmd == "validate-trace":
        problems = validate_chrome_trace(
            doc, require_exec_tasks=args.require_exec_tasks)
        kind = f"trace ({len(doc.get('traceEvents', []))} events)"
    elif args.obs_cmd == "validate-attr":
        problems = validate_attribution(doc)
        kind = f"attribution profile ({doc.get('n_nodes', '?')} nodes)"
    else:  # validate-slo
        problems = validate_slo_report(doc)
        kind = "SLO report"
    if problems:
        print(f"{len(problems)} problem(s) in {args.path}:")
        for prob in problems:
            print(f"  {prob}")
        return 1
    print(f"{kind} ok: {args.path}")
    return 0


def cmd_explain(args) -> int:
    """Attributed gravity iteration + causal what-if report.

    Runs one (or more) Driver iterations with per-node attribution on,
    then prints where the traversal cost concentrates (hot subtrees),
    which partitions cause the cache misses (ghost-layer guidance), how
    the exec chunks balanced, the DES critical path, and a battery of
    causal what-if predictions replayed over the recorded event graph.
    """
    import json

    from .apps.gravity import GravityDriver
    from .core import Configuration
    from .obs import (
        Telemetry, chrome_trace, format_chunk_heatmap,
        set_telemetry, validate_attribution,
    )
    from .particles import clustered_clumps
    from .perf import format_whatifs, parse_whatif, standard_whatifs, what_if
    from .perf.whatif import VirtualSpeedup
    from .runtime import simulate_traversal, workload_from_traversal

    p = clustered_clumps(args.n, seed=args.seed)
    cfg = Configuration(
        num_iterations=args.iterations, tree_type=args.tree,
        bucket_size=args.bucket, traverser=args.traverser,
        num_partitions=args.partitions, num_subtrees=args.partitions,
        tree_builder=args.tree_builder,
    )

    class Main(GravityDriver):
        def create_particles(self, config):
            return p

    driver = Main(cfg, theta=args.theta)
    telemetry = Telemetry()
    set_telemetry(telemetry)
    driver.enable_telemetry(telemetry)
    driver.enable_attribution()
    _enable_parallel_from_args(driver, args)
    t0 = time.time()
    try:
        driver.run()
    finally:
        driver.disable_parallel()
        set_telemetry(None)
    wall = time.time() - t0
    tree = driver.tree

    # merge the attributed iterations into one profile
    profiles = driver.attribution_profiles
    profile = profiles[0]
    for extra in profiles[1:]:
        profile.merge(extra)
    totals = profile.totals()
    print(f"attributed {args.iterations} gravity iteration(s), n={args.n}, "
          f"backend={args.backend}, {wall:.2f}s wall")
    print(f"  visits={totals['visits']:,}  mac_accepts={totals['mac_accepts']:,}"
          f"  pn_pairs={totals['pn_pairs']:,}  pp_pairs={totals['pp_pairs']:,}"
          f"  est cost {totals['cost_ns'] / 1e6:.3f} ms")

    print(f"\nhot subtrees (depth<={args.depth}, top {args.top}):")
    print(f"  {'node':>6} {'lvl':>3} {'parts':>6} {'cost':>12} {'share':>7} "
          f"{'visits':>9} {'pp':>12} {'pn':>12}")
    for row in profile.subtree_rollup(tree, depth=args.depth, top=args.top):
        print(f"  {row['node']:>6} {row['level']:>3} {row['particles']:>6} "
              f"{row['cost_ns'] / 1e6:>10.3f}ms {row['cost_frac']:>7.1%} "
              f"{row['visits']:>9,} {row['pp_pairs']:>12,} {row['pn_pairs']:>12,}")

    if profile.cache:
        c = profile.cache
        print(f"\ncache-miss attribution ({c['n_processes']} simulated "
              f"processes, {c['total_remote_touches']:,} remote touches, "
              f"{c['total_bytes'] / 1e6:.2f} MB):")
        for row in c["partitions"][:args.top]:
            tops = ", ".join(f"st{t['subtree']}×{t['touches']}"
                             for t in row["top_subtrees"])
            print(f"  partition {row['partition']:>3} (proc {row['process']}): "
                  f"{row['touches']:>7,} touches, {row['unique_groups']:>5} "
                  f"groups, {row['bytes'] / 1e3:>8.1f} kB   <- {tops}")
        print("  (partitions concentrating on few foreign subtrees are "
              "ghost-layer candidates)")

    print()
    print(format_chunk_heatmap(profile.chunks))

    # DES replay of the recorded traversal: critical path + causal what-if
    lists = driver.last_interaction_lists
    whatifs = []
    null_ok = None
    res = None
    if lists is not None and lists.visited and driver.decomposition is not None:
        wl = workload_from_traversal(
            tree, driver.decomposition, lists,
            nodes_per_request=cfg.nodes_per_request,
            shared_branch_levels=cfg.shared_branch_levels,
        )
        res = simulate_traversal(wl, n_processes=cfg.num_partitions,
                                 critical_path=True, collect_trace=True)
        print()
        print(res.critical_path.format())
        null = what_if(res.cp_graph, res.time, VirtualSpeedup(1.0))
        null_ok = null.predicted == res.time
        print(f"  null speedup (×1.0) reproduces makespan exactly: {null_ok} "
              f"({null.predicted:.9g}s vs {res.time:.9g}s)")
        whatifs = standard_whatifs(res.cp_graph, res.time)
        for spec in args.whatif or ():
            try:
                whatifs.append(what_if(res.cp_graph, res.time, parse_whatif(spec)))
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        whatifs.sort(key=lambda r: r.predicted)
        print()
        print(format_whatifs(whatifs, res.time))
    else:
        print("\n(no interaction lists recorded: skipping DES what-if replay)")

    if args.json:
        doc = profile.to_dict(tree, depth=args.depth, top=args.top)
        if res is not None:
            doc["critical_path"] = res.critical_path.to_dict()
            doc["whatif"] = [r.to_dict() for r in whatifs]
            doc["null_speedup_exact"] = bool(null_ok)
        problems = validate_attribution(doc)
        with open(args.json, "w") as fh:
            json.dump(doc, fh)
        print(f"\nwrote attribution profile to {args.json}"
              + (f" ({len(problems)} validation problem(s)!)" if problems else ""))
        if problems:
            for prob in problems:
                print(f"  problem: {prob}", file=sys.stderr)
            return 1

    if args.trace:
        doc = chrome_trace(telemetry, command="explain")
        events = doc["traceEvents"]
        ts = max((e.get("ts", 0) + e.get("dur", 0) for e in events), default=0)
        events.extend(profile.counter_events(ts=ts, tree=tree, depth=args.depth))
        with open(args.trace, "w") as fh:
            json.dump(doc, fh)
        print(f"wrote {len(events)} trace events (with attribution counter "
              f"tracks) to {args.trace}")

    if null_ok is False:
        print("error: null-speedup replay diverged from the DES makespan",
              file=sys.stderr)
        return 1
    return 0


def _top_pipeline_driver(name: str, n: int, iterations: int, seed: int):
    """A small live pipeline for ``repro top <pipeline>``."""
    from .core import Configuration

    cfg = Configuration(num_iterations=iterations)
    if name == "gravity":
        from .apps.gravity import GravityDriver
        from .particles import clustered_clumps

        p = clustered_clumps(n, seed=seed)

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        return Main(cfg, theta=0.7)
    if name == "sph":
        from .apps.sph import SPHDriver
        from .particles import uniform_cube

        p = uniform_cube(n, seed=seed)

        class Main(SPHDriver):
            def create_particles(self, config):
                return p

        return Main(cfg, k_neighbors=32)
    from .apps.knn import KNNDriver
    from .particles import clustered_clumps

    p = clustered_clumps(n, seed=seed)

    class Main(KNNDriver):
        def create_particles(self, config):
            return p

    return Main(cfg, k=8)


def cmd_top(args) -> int:
    from .obs import Dashboard, follow_status_file, read_status_file

    dash = Dashboard()
    if args.source in ("gravity", "sph", "knn"):
        from .obs import Telemetry, set_telemetry

        driver = _top_pipeline_driver(args.source, args.n, args.iterations,
                                      args.seed)
        telemetry = Telemetry()
        set_telemetry(telemetry)
        driver.enable_telemetry(telemetry)
        _enable_parallel_from_args(driver, args)
        driver.enable_dashboard(dash)
        try:
            driver.run()
        finally:
            driver.disable_parallel()
            set_telemetry(None)
        return 0

    # Source is a --status-file path written by another (possibly still
    # running) process.
    if args.follow:
        try:
            for snap in follow_status_file(args.source, poll=args.poll):
                dash.update(snap)
        except KeyboardInterrupt:
            pass
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        snaps = read_status_file(args.source)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not snaps:
        print(f"error: no status snapshots in {args.source}", file=sys.stderr)
        return 2
    dash.update(snaps[-1])
    return 0


def _serve_traffic_shape(args, rate: float):
    from .serve import TrafficShape

    return TrafficShape(
        rate=rate, duration=args.duration, burst_factor=args.overload,
        burst_window=(0.4, 0.6), think_tail=args.think_tail,
        deadline=args.query_deadline, deadline_frac=args.deadline_frac,
        ops=tuple(args.ops.split(",")), k=args.k,
    )


def cmd_serve(args) -> int:
    import asyncio
    import signal as _signal

    from .serve import (
        AdmissionConfig,
        QueryService,
        ServeConfig,
        ServiceModel,
        SocketServer,
        TokenBucket,
        accounting_delta,
        calibrate_capacity,
        generate_traffic,
        run_trace,
        simulate_service,
    )
    from .serve.batcher import BatchPolicy

    telemetry = _telemetry_from_args(args)
    if args.resume:
        dataset = {"checkpoint": args.resume}
    else:
        dataset = {"kind": args.dataset, "n": args.n, "seed": args.seed}
    dataset["tree_type"] = args.tree
    dataset["bucket_size"] = args.bucket
    dataset["tree_builder"] = args.tree_builder
    admission = AdmissionConfig(
        queue_capacity=args.queue_cap, rate=args.rate, burst=args.burst,
        slo=args.shed_slo, default_deadline=args.deadline)
    batch_max = args.batch_max or 4 * args.bucket
    cfg = ServeConfig(
        dataset=dataset, admission=admission, batch_max=batch_max,
        batch_wait=args.batch_wait, executor=args.executor,
        workers=args.workers or 2, exec_deadline=args.exec_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        checkpoint_dir=args.checkpoint_dir,
        status_every=args.status_every,
    )

    if args.sim:
        # DES only: model the admission queue + shedding under the shape,
        # no tree needed — this is how million-user shapes are explored
        shape = _serve_traffic_shape(args, args.bench_rate or 1000.0)
        trace = generate_traffic(shape, np.zeros(3), np.ones(3),
                                 seed=args.traffic_seed,
                                 max_queries=args.queries)
        if args.queries and len(trace) >= args.queries:
            print(f"note: trace capped at {args.queries} queries", file=sys.stderr)
        sim = simulate_service(
            trace, admission, BatchPolicy(batch_max, 0.0),
            ServiceModel(straggler_prob=args.sim_straggler,
                         crash_prob=args.sim_crash),
            seed=args.traffic_seed)
        print(json.dumps(sim.to_dict(), indent=2))
        _finish_telemetry(telemetry, args)
        return 0

    try:
        service = QueryService(cfg)
    except Exception as exc:  # noqa: BLE001 - bad checkpoint/spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.status_file:
        from .obs.top import StatusWriter

        service.add_status_consumer(StatusWriter(args.status_file).update)
    box = service.state.particles.bounding_box()

    if args.bench or args.validate:
        trace_seed = args.traffic_seed

        async def _offline() -> int:
            if args.bench:
                probe = generate_traffic(
                    _serve_traffic_shape(args, 1000.0), box.lo, box.hi,
                    seed=trace_seed + 1, max_queries=batch_max)
                capacity = calibrate_capacity(service, probe)
                base_rate = args.bench_rate or capacity
                if service.admission.bucket is None:
                    # shed explicitly at measured capacity rather than queueing
                    service.admission.bucket = TokenBucket(
                        capacity, burst=max(8.0, 0.1 * capacity))
                shape = _serve_traffic_shape(args, base_rate)
                trace = generate_traffic(shape, box.lo, box.hi,
                                         seed=trace_seed,
                                         max_queries=args.queries)
                spec = None
                if args.slo:
                    from .obs import parse_slo_spec

                    spec = parse_slo_spec(args.slo)
                result = await run_trace(service, trace, pace=True, slo=spec)
                await service.stop()
                doc = result.to_dict()
                doc["capacity_qps"] = round(capacity, 1)
                doc["offered_qps"] = round(base_rate, 1)
                print(json.dumps(doc, indent=2))
                if result.slo is not None:
                    print(result.slo.summary())
                    if args.slo_report:
                        result.slo.write(args.slo_report)
                        print(f"wrote SLO report to {args.slo_report}")
                    return 1 if result.slo.violated else 0
                return 0
            # --validate: DES model vs an unpaced real replay, same trace
            shape = _serve_traffic_shape(args, args.bench_rate or 400.0)
            trace = generate_traffic(shape, box.lo, box.hi, seed=trace_seed,
                                     max_queries=args.queries)
            sim = simulate_service(
                trace, admission, BatchPolicy(batch_max, 0.0),
                ServiceModel(straggler_prob=args.sim_straggler,
                             crash_prob=args.sim_crash),
                seed=trace_seed)
            real = await run_trace(service, trace, pace=False)
            await service.stop()
            delta = accounting_delta(real.accounting, sim.accounting)
            print(json.dumps({"sim": sim.accounting, "real": real.accounting,
                              "delta": delta}, indent=2))
            if delta:
                print("error: DES and real accounting disagree", file=sys.stderr)
                return 1
            print(f"accounting agrees across {len(trace)} queries "
                  f"(served={real.accounting['served']}, "
                  f"shed={real.accounting['shed_total']}, "
                  f"expired={real.accounting['expired']})")
            return 0

        rc = asyncio.run(_offline())
        _finish_telemetry(telemetry, args)
        return rc

    # server mode: run until SIGTERM/SIGINT, then drain + checkpoint
    socket_path, port = args.socket, args.port
    if socket_path is None and port is None:
        socket_path = "repro-serve.sock"

    async def _serve() -> None:
        server = SocketServer(service, socket_path=socket_path, port=port)
        await server.start()
        print(f"serving {service.state.n_particles} particles at "
              f"{server.where} (executor={cfg.executor}, "
              f"batch_max={service.batcher.policy.batch_max})", flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            loop.add_signal_handler(sig, stop.set)
        await stop.wait()
        print("drain: admission stopped, settling in-flight batches",
              flush=True)
        path = await service.drain()
        if path:
            print(f"wrote drain checkpoint {path} "
                  f"(restart with `repro serve --resume {path}`)", flush=True)
        await server.stop()
        print(json.dumps(service.admission.counters.to_dict()), flush=True)

    asyncio.run(_serve())
    _finish_telemetry(telemetry, args)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("gravity", help="Barnes-Hut gravity solve")
    _add_common(g, 20_000)
    g.add_argument("--theta", type=float, default=0.7)
    g.add_argument("--softening", type=float, default=1e-3)
    g.add_argument("--traverser", default="transposed",
                   choices=["transposed", "per-bucket", "up-and-down"])
    g.add_argument("--quadrupole", action="store_true")
    g.add_argument("--check", action="store_true", help="compare to direct sum")
    g.add_argument("--iterations", type=int, default=1,
                   help="driver iterations (Driver-pipeline runs only)")
    g.add_argument("--dt", type=float, default=0.0,
                   help="leapfrog timestep (0 = forces only, no integration)")
    _add_telemetry(g)
    _add_slo(g)
    _add_faults(g)
    _add_critical_path(g)
    _add_checkpoint(g)
    _add_parallel(g)
    g.set_defaults(fn=cmd_gravity)

    s = sub.add_parser("sph", help="SPH density estimation")
    _add_common(s, 6_000)
    s.add_argument("--k", type=int, default=32)
    s.add_argument("--baseline", action="store_true", help="run Gadget-style too")
    s.add_argument("--iterations", type=int, default=1,
                   help="driver iterations (Driver-pipeline runs only)")
    s.add_argument("--dt", type=float, default=0.0,
                   help="leapfrog timestep (0 = density/forces only)")
    _add_telemetry(s)
    _add_faults(s)
    _add_checkpoint(s)
    _add_parallel(s)
    s.set_defaults(fn=cmd_sph)

    k = sub.add_parser("knn", help="k-nearest-neighbour search")
    _add_common(k, 20_000)
    k.add_argument("--k", type=int, default=8)
    k.add_argument("--iterations", type=int, default=1,
                   help="driver iterations (Driver-pipeline runs only)")
    _add_telemetry(k)
    _add_faults(k)
    _add_checkpoint(k)
    _add_parallel(k)
    k.set_defaults(fn=cmd_knn)

    d = sub.add_parser("disk", help="planetesimal disk with collisions")
    d.add_argument("--n", type=int, default=4_000)
    d.add_argument("--seed", type=int, default=1)
    d.add_argument("--steps", type=int, default=30)
    d.add_argument("--dt", type=float, default=0.02)
    d.add_argument("--radius", type=float, default=2.5e-3)
    _add_telemetry(d)
    _add_faults(d)
    _add_critical_path(d)
    _add_checkpoint(d)
    _add_parallel(d)
    d.set_defaults(fn=cmd_disk)

    c = sub.add_parser("correlation", help="two-point correlation function")
    c.add_argument("--n", type=int, default=2_000)
    c.add_argument("--seed", type=int, default=1)
    c.add_argument("--rmin", type=float, default=0.01)
    c.add_argument("--rmax", type=float, default=1.0)
    c.add_argument("--bins", type=int, default=8)
    _add_telemetry(c)
    _add_faults(c)
    _add_checkpoint(c)
    _add_parallel(c)
    c.set_defaults(fn=cmd_correlation)

    r = sub.add_parser("resume", help="resume a run from a checkpoint file")
    r.add_argument("checkpoint", help="path to a ckpt_*.npz checkpoint")
    r.add_argument("--iterations", type=int, default=None,
                   help="override the total iteration count recorded in the "
                        "checkpoint (absolute, not additional)")
    _add_telemetry(r)
    _add_faults(r)
    _add_checkpoint(r)
    _add_parallel(r)
    r.set_defaults(fn=cmd_resume)

    a = sub.add_parser(
        "audit", help="byte-level comparison of two npz state archives "
                      "(checkpoints or --save-state snapshots), or "
                      "--shm to sweep orphaned shared-memory segments")
    a.add_argument("a", nargs="?", default=None)
    a.add_argument("b", nargs="?", default=None)
    a.add_argument("--shm", action="store_true",
                   help="sweep /dev/shm for arena segments whose owning "
                        "process is dead (left by SIGKILLed/OOM-killed "
                        "runs) and unlink them")
    a.add_argument("--shm-prefix", default="repro", metavar="PREFIX",
                   help="segment name prefix to match (default: repro)")
    a.add_argument("--dry-run", action="store_true",
                   help="with --shm: report orphans without unlinking")
    a.set_defaults(fn=cmd_audit)

    sc = sub.add_parser("scale", help="simulated strong-scaling sweep")
    sc.add_argument("--n", type=int, default=20_000)
    sc.add_argument("--seed", type=int, default=7)
    sc.add_argument("--partitions", type=int, default=256)
    sc.add_argument("--machine", default="Stampede2", choices=["Summit", "Stampede2", "Bridges2"])
    sc.add_argument("--cache", default="WaitFree",
                    choices=["WaitFree", "XWrite", "Sequential", "PerThread", "SingleWriter"])
    sc.add_argument("--workers", type=int, default=0, help="workers per process (0 = full node)")
    sc.add_argument("--cores", type=int, nargs="+", default=[24, 96, 384, 1536])
    _add_telemetry(sc)
    _add_slo(sc)
    _add_faults(sc)
    _add_critical_path(sc)
    sc.set_defaults(fn=cmd_scale)

    b = sub.add_parser("bench", help="benchmark harness (run/list/compare/report)")
    bsub = b.add_subparsers(dest="bench_cmd", required=True)

    br = bsub.add_parser("run", help="run registered benchmarks, write BENCH_*.json")
    br.add_argument("ids", nargs="*",
                    help="benchmark IDs or globs (default: all), e.g. 'des.*'")
    br.add_argument("--quick", action="store_true",
                    help="scaled-down workloads, fewer repeats (CI smoke)")
    br.add_argument("--repeats", type=int, default=None,
                    help="override the per-benchmark repeat count")
    br.add_argument("--output", "-o", default=None,
                    help="output path (default: BENCH_<timestamp>.json)")
    br.add_argument("--artifacts", default=None,
                    help="also write one JSON artifact per benchmark here")
    br.add_argument("--no-progress", action="store_true")
    br.set_defaults(fn=cmd_bench)

    bl = bsub.add_parser("list", help="list registered benchmarks")
    bl.set_defaults(fn=cmd_bench)

    bc = bsub.add_parser("compare", help="noise-aware regression check of two BENCH files")
    bc.add_argument("baseline")
    bc.add_argument("new")
    bc.add_argument("--rel-floor", type=float, default=0.25,
                    help="relative regression floor (default 0.25)")
    bc.add_argument("--k-iqr", type=float, default=3.0,
                    help="noise multiplier on the larger IQR (default 3.0)")
    bc.add_argument("--markdown", metavar="PATH", default=None,
                    help="write a markdown report ('-' for stdout)")
    bc.add_argument("--warn-only", action="store_true",
                    help="always exit 0 (CI smoke against a stale baseline)")
    bc.set_defaults(fn=cmd_bench)

    bp = bsub.add_parser("report", help="render one BENCH file as a console table")
    bp.add_argument("path")
    bp.set_defaults(fn=cmd_bench)

    o = sub.add_parser("obs", help="observability utilities "
                                   "(flight dumps, trace/SLO validation)")
    osub = o.add_subparsers(dest="obs_cmd", required=True)
    od = osub.add_parser("dump", help="pretty-print a flight-recorder dump")
    od.add_argument("path", help="a dump written by --flight or on crash")
    od.add_argument("--last", type=int, default=None, metavar="N",
                    help="show only the last N events")
    od.set_defaults(fn=cmd_obs)
    ot = osub.add_parser("validate-trace",
                         help="structural checks on a Chrome trace JSON")
    ot.add_argument("path")
    ot.add_argument("--require-exec-tasks", action="store_true",
                    help="also require exec.task spans, each nested inside "
                         "its owning phase span")
    ot.set_defaults(fn=cmd_obs)
    ov = osub.add_parser("validate-slo",
                         help="schema checks on an SLO report JSON")
    ov.add_argument("path")
    ov.set_defaults(fn=cmd_obs)
    oa = osub.add_parser("validate-attr",
                         help="schema + invariant checks on a repro.attr/1 "
                              "attribution profile (repro explain --json)")
    oa.add_argument("path")
    oa.set_defaults(fn=cmd_obs)

    e = sub.add_parser(
        "explain",
        help="traversal attribution & causal what-if profiler: hot "
             "subtrees, per-partition cache misses, chunk imbalance, "
             "critical path, and predicted makespan deltas")
    _add_common(e, 8_000)
    e.add_argument("--theta", type=float, default=0.7)
    e.add_argument("--traverser", default="transposed",
                   choices=["transposed", "per-bucket", "up-and-down"])
    e.add_argument("--iterations", type=int, default=1)
    e.add_argument("--partitions", type=int, default=8,
                   help="partitions / simulated processes for the cache and "
                        "DES attributions")
    e.add_argument("--depth", type=int, default=3, metavar="D",
                   help="subtree rollup depth cutoff (default 3)")
    e.add_argument("--top", type=int, default=8, metavar="K",
                   help="rows per table (default 8)")
    e.add_argument("--whatif", action="append", metavar="SPEC",
                   help="extra virtual speedup to evaluate, e.g. "
                        "'latency ×0.5' or 'kind=compute,resource=p3/* *0.8' "
                        "(repeatable)")
    e.add_argument("--json", metavar="PATH", default=None,
                   help="write the full repro.attr/1 profile (validate with "
                        "`repro obs validate-attr`)")
    e.add_argument("--trace", metavar="PATH", default=None,
                   help="write a Perfetto trace with attribution counter "
                        "tracks alongside the spans")
    _add_parallel(e)
    e.set_defaults(fn=cmd_explain)

    sv = sub.add_parser(
        "serve",
        help="online query service over a resident tree (kNN/range/density "
             "with admission control, load shedding, and graceful drain)")
    _add_common(sv, 20_000)
    sv.add_argument("--dataset", default="clumps",
                    choices=["clumps", "cube", "plummer", "disk"],
                    help="generator for the resident dataset")
    sv.add_argument("--resume", metavar="CKPT", default=None,
                    help="restore the resident dataset from a drain "
                         "checkpoint (bit-identical warm restart)")
    sv.add_argument("--socket", metavar="PATH", default=None,
                    help="serve JSONL queries on a Unix socket "
                         "(default: repro-serve.sock)")
    sv.add_argument("--port", type=int, default=None, metavar="N",
                    help="serve JSONL queries on 127.0.0.1:N instead of a "
                         "Unix socket (0 = ephemeral)")
    adm = sv.add_argument_group("admission control")
    adm.add_argument("--rate", type=float, default=None, metavar="QPS",
                     help="token-bucket admission rate (default: unlimited; "
                          "--bench defaults it to measured capacity)")
    adm.add_argument("--burst", type=float, default=None, metavar="TOKENS",
                     help="token-bucket depth (default max(1, rate))")
    adm.add_argument("--queue-cap", type=int, default=1024, metavar="N",
                     help="bounded admission queue capacity (default 1024)")
    adm.add_argument("--shed-slo", metavar="SPEC", default=None,
                     help="shed new work while the trailing served-latency "
                          "window burns this SLO (PR 6 grammar, e.g. "
                          "'lat<20ms,target=0.95,burn=2')")
    adm.add_argument("--deadline", type=float, default=None, metavar="SECS",
                     help="default per-query deadline; queued work past it "
                          "is dropped before execution")
    ex = sv.add_argument_group("execution")
    ex.add_argument("--batch-max", type=int, default=None, metavar="N",
                    help="micro-batch size (default 4 x bucket size)")
    ex.add_argument("--batch-wait", type=float, default=0.002, metavar="SECS",
                    help="linger for stragglers before cutting a sub-max "
                         "batch (default 2ms)")
    ex.add_argument("--executor", default="inline",
                    choices=["inline", "threads", "processes"],
                    help="batch execution mode (supervised for pools)")
    ex.add_argument("--workers", type=int, default=0, metavar="W",
                    help="pool worker count (default 2)")
    ex.add_argument("--exec-deadline", type=float, default=None, metavar="SECS",
                    help="per-chunk supervisor deadline")
    ex.add_argument("--breaker-threshold", type=int, default=3, metavar="K",
                    help="consecutive degraded batches before the circuit "
                         "breaker falls back to serial (default 3)")
    ex.add_argument("--breaker-cooldown", type=float, default=5.0,
                    metavar="SECS", help="breaker open time before a "
                                         "half-open trial (default 5)")
    sv.add_argument("--checkpoint-dir", default="checkpoints", metavar="DIR",
                    help="where the SIGTERM drain checkpoint is written")
    sv.add_argument("--status-every", type=float, default=1.0, metavar="SECS",
                    help="status frame interval for --status-file (default 1)")
    mode = sv.add_mutually_exclusive_group()
    mode.add_argument("--bench", action="store_true",
                      help="open-loop load bench against this server "
                           "(Poisson + burst + heavy-tailed think times), "
                           "gated by --slo")
    mode.add_argument("--validate", action="store_true",
                      help="replay one seeded trace through the DES model "
                           "and the real server; exit 1 unless the "
                           "served/shed/expired accounting matches")
    mode.add_argument("--sim", action="store_true",
                      help="DES model only (no tree): explore admission + "
                           "shedding under large traffic shapes")
    tr = sv.add_argument_group("traffic shape (--bench/--validate/--sim)")
    tr.add_argument("--bench-rate", type=float, default=None, metavar="QPS",
                    help="offered base rate (default: measured capacity for "
                         "--bench, 400 for --validate, 1000 for --sim)")
    tr.add_argument("--overload", type=float, default=4.0, metavar="X",
                    help="burst multiplier over the base rate in the middle "
                         "fifth of the run (default 4)")
    tr.add_argument("--duration", type=float, default=3.0, metavar="SECS",
                    help="trace duration (default 3)")
    tr.add_argument("--queries", type=int, default=None, metavar="N",
                    help="hard cap on generated queries")
    tr.add_argument("--think-tail", type=float, default=0.0, metavar="P",
                    help="probability of a heavy-tailed (Pareto) think-time "
                         "gap after an arrival")
    tr.add_argument("--query-deadline", type=float, default=None,
                    metavar="SECS", help="deadline carried by a fraction of "
                                         "queries (see --deadline-frac)")
    tr.add_argument("--deadline-frac", type=float, default=0.0, metavar="F",
                    help="fraction of queries carrying --query-deadline")
    tr.add_argument("--ops", default="knn", metavar="LIST",
                    help="comma list of ops to draw from (knn,range,density)")
    tr.add_argument("--k", type=int, default=8, help="k for knn/density queries")
    tr.add_argument("--traffic-seed", type=int, default=0, metavar="SEED")
    tr.add_argument("--sim-straggler", type=float, default=0.0, metavar="P",
                    help="DES model: per-batch straggler probability")
    tr.add_argument("--sim-crash", type=float, default=0.0, metavar="P",
                    help="DES model: per-batch worker-crash probability")
    _add_telemetry(sv)
    _add_slo(sv)
    sv.set_defaults(fn=cmd_serve)

    t = sub.add_parser("top", help="live terminal dashboard")
    t.add_argument("source",
                   help="pipeline to run live (gravity|sph|knn), or the path "
                        "of a --status-file written by another run")
    t.add_argument("--n", type=int, default=8_000)
    t.add_argument("--seed", type=int, default=1)
    t.add_argument("--iterations", type=int, default=4)
    t.add_argument("--once", action="store_true",
                   help="render the latest snapshot and exit "
                        "(status-file sources; this is the default)")
    t.add_argument("--follow", action="store_true",
                   help="poll the status file and repaint on new snapshots")
    t.add_argument("--poll", type=float, default=0.5, metavar="SECS",
                   help="poll interval for --follow (default 0.5)")
    _add_parallel(t)
    t.set_defaults(fn=cmd_top)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
