"""SPH: kernels, density paths (kNN vs Gadget-style), forces, driver."""

import numpy as np
import pytest

from repro.apps.sph import (
    SPHDriver,
    compute_density_knn,
    compute_pressure_forces,
    cubic_spline_W,
    cubic_spline_gradW_over_r,
    equation_of_state,
    gadget_style_density,
)
from repro.core import Configuration
from repro.particles import uniform_cube
from repro.trees import build_tree


class TestKernel:
    def test_normalisation(self):
        """∫ W dV = 1 over the support sphere."""
        h = 1.0
        r = np.linspace(0, h, 20001)
        w = cubic_spline_W(r, h)
        integral = np.trapezoid(4 * np.pi * r**2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-4)

    def test_compact_support(self):
        assert cubic_spline_W(np.array([1.0, 1.5]), 1.0).tolist() == [0.0, 0.0]
        assert cubic_spline_W(np.array([0.999]), 1.0)[0] > 0

    def test_monotone_decreasing(self):
        r = np.linspace(0, 1, 100)
        w = cubic_spline_W(r, 1.0)
        assert np.all(np.diff(w) <= 1e-12)

    def test_gradient_matches_finite_difference(self):
        h = 0.8
        r = np.linspace(0.01, 0.79, 50)
        eps = 1e-6
        dw = (cubic_spline_W(r + eps, h) - cubic_spline_W(r - eps, h)) / (2 * eps)
        got = cubic_spline_gradW_over_r(r, h) * r
        assert np.allclose(got, dw, rtol=1e-4, atol=1e-6)

    def test_gradient_zero_at_origin_limit(self):
        # (dW/dr)/r is finite at r=0 (inner-branch analytic limit)
        val = cubic_spline_gradW_over_r(np.array([0.0]), 1.0)
        assert np.isfinite(val[0])

    def test_invalid_h(self):
        with pytest.raises(ValueError):
            cubic_spline_W(np.array([0.1]), 0.0)


@pytest.fixture(scope="module")
def tree():
    return build_tree(uniform_cube(1200, seed=10, total_mass=1.0), tree_type="oct", bucket_size=16)


class TestDensity:
    def test_uniform_density_recovered_with_analytic_bias(self, tree):
        """On a uniform unit cube of total mass 1, the interior estimate is
        ρ × (1 + 9.7/k): with h = d_k the k−1 interior neighbours contribute
        ρ(k−1)/k on average while the self term adds m·W(0) = ρ·(32/3)/k.
        For k = 32 that's a factor ≈ 1.29."""
        k = 32
        st = compute_density_knn(tree, k=k)
        pos = tree.particles.position
        interior = np.all(np.abs(pos) < 0.3, axis=1)
        expected = 1.0 * (1.0 - 1.0 / k + (32.0 / 3.0) / k)
        assert np.median(st.density[interior]) == pytest.approx(expected, rel=0.10)

    def test_h_encloses_k_neighbors(self, tree):
        st = compute_density_knn(tree, k=16)
        assert st.neighbors is not None
        # support radius just over the k-th neighbour distance
        assert np.all(st.h**2 >= st.neighbors.dist_sq[:, -1] * 0.999)

    def test_gadget_agrees_with_knn(self, tree):
        knn = compute_density_knn(tree, k=24)
        gad = gadget_style_density(tree, k=24, tol=2)
        assert np.all(gad.converged)
        ratio = gad.density / knn.density
        assert np.median(np.abs(ratio - 1)) < 0.2

    def test_gadget_costs_more_traversal_work(self, tree):
        """The Fig 11 mechanism: ball iteration does a multiple of the kNN
        traversal work."""
        knn = compute_density_knn(tree, k=24)
        gad = gadget_style_density(tree, k=24, tol=2)
        assert gad.n_rounds >= 3
        assert gad.stats.pp_interactions > 1.5 * knn.stats.pp_interactions

    def test_density_positive(self, tree):
        st = compute_density_knn(tree, k=8)
        assert np.all(st.density > 0)


class TestForcesAndEoS:
    def test_eos_forms(self):
        rho = np.array([1.0, 2.0])
        assert np.allclose(
            equation_of_state(rho, internal_energy=1.5, gamma=5 / 3),
            (5 / 3 - 1) * rho * 1.5,
        )
        assert np.allclose(equation_of_state(rho, sound_speed=2.0), 4.0 * rho)
        with pytest.raises(ValueError):
            equation_of_state(rho)

    def test_lattice_interior_forces_vanish(self):
        """On a regular lattice (a relaxed uniform medium), symmetry cancels
        interior pressure forces; only the free boundary pushes."""
        from repro.particles import ParticleSet

        g = np.linspace(-0.5, 0.5, 12)
        X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
        pos = np.column_stack([X.ravel(), Y.ravel(), Z.ravel()])
        p = ParticleSet(pos, mass=np.full(len(pos), 1.0 / len(pos)))
        t = build_tree(p, tree_type="oct", bucket_size=16)
        st = compute_density_knn(t, k=32)
        P = equation_of_state(st.density, internal_energy=1.0)
        acc = compute_pressure_forces(t, st.neighbors, st.density, P, st.h)
        q = t.particles.position
        interior = np.all(np.abs(q) < 0.25, axis=1)
        edge = np.any(np.abs(q) > 0.45, axis=1)
        a = np.linalg.norm(acc, axis=1)
        assert np.median(a[interior]) < 0.1 * np.median(a[edge])

    def test_momentum_nearly_conserved(self, tree):
        """Symmetrised pairwise forces conserve momentum up to neighbour-list
        truncation asymmetry."""
        st = compute_density_knn(tree, k=32)
        P = equation_of_state(st.density, internal_energy=1.0)
        acc = compute_pressure_forces(tree, st.neighbors, st.density, P, st.h)
        m = tree.particles.mass
        net = (m[:, None] * acc).sum(axis=0)
        scale = np.abs(m[:, None] * acc).sum(axis=0)
        assert np.all(np.abs(net) < 0.05 * scale)

    def test_pressure_pushes_outward_from_overdensity(self):
        """A dense clump in a sparse background expands."""
        rng = np.random.default_rng(3)
        clump = rng.normal(0, 0.03, (300, 3))
        bg = rng.uniform(-0.5, 0.5, (300, 3))
        from repro.particles import ParticleSet

        p = ParticleSet(np.vstack([clump, bg]))
        t = build_tree(p, tree_type="oct", bucket_size=16)
        st = compute_density_knn(t, k=16)
        P = equation_of_state(st.density, internal_energy=1.0)
        acc = compute_pressure_forces(t, st.neighbors, st.density, P, st.h)
        pos = t.particles.position
        in_clump = np.linalg.norm(pos, axis=1) < 0.05
        radial = np.einsum("ij,ij->i", acc, pos)
        # Net outward push: the mean radial acceleration in the clump is
        # positive and most clump members feel it.
        assert np.mean(radial[in_clump]) > 0
        assert np.mean(radial[in_clump] > 0) > 0.55


class TestSPHDriver:
    def test_driver_runs_and_updates(self):
        class Main(SPHDriver):
            def create_particles(self, config):
                return uniform_cube(600, seed=15, total_mass=1.0)

        cfg = Configuration(num_iterations=2, num_partitions=4, num_subtrees=4)
        d = Main(cfg, k_neighbors=16, dt=1e-4)
        d.run()
        assert d.state is not None
        assert d.pressure is not None and np.all(d.pressure > 0)
        assert d.accelerations.shape == (600, 3)
        assert d.reports[-1].stats.pp_interactions > 0
