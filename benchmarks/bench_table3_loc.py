"""Table III — line counts of user code in the gravity application.

The paper's productivity claim: a full distributed Barnes-Hut gravity code
is 135 lines of user code (vs ~4 500 application-specific lines in ChaNGa),
split across Data / Visitor / Main.  We regenerate the table by counting
our Python equivalents of exactly those three user artefacts.
"""

import pathlib

from repro.bench import format_table, paper_reference, print_banner
from repro.perf import benchmark as perf_benchmark

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Our user-code artefacts mirroring the paper's three files.
USER_CODE = [
    ("CentroidData", REPO / "src/repro/apps/gravity/centroid.py",
     "Define optimized Data functions"),
    ("GravityVisitor", REPO / "src/repro/apps/gravity/visitor.py",
     "Define Visitor functions"),
    ("GravityMain", REPO / "examples/gravity_simulation.py",
     "Specify config, define traversal"),
]


def count_code_lines(path: pathlib.Path) -> int:
    """Non-blank, non-comment, non-docstring lines (the paper counts code)."""
    lines = path.read_text().splitlines()
    count = 0
    in_doc = False
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if in_doc:
            if line.endswith('"""') or line.endswith("'''"):
                in_doc = False
            continue
        if line.startswith(('"""', "'''")):
            if not (len(line) > 3 and line.endswith(('"""', "'''"))):
                in_doc = True
            continue
        count += 1
    return count


@perf_benchmark("meta.loc_count", group="meta",
                description="user-code line counting (I/O-bound microbench)",
                repeats=7, quick_repeats=5)
def perf_loc_count(quick=False):
    def run():
        rows = [(name, count_code_lines(path), use)
                for name, path, use in USER_CODE]
        return {"total_lines": sum(r[1] for r in rows)}

    return run


def test_table3_loc(benchmark):
    rows = benchmark(
        lambda: [
            (name, count_code_lines(path), use) for name, path, use in USER_CODE
        ]
    )
    total = sum(r[1] for r in rows)
    print_banner("Table III: line counts of user code (gravity application)")
    print(format_table(["Component", "Code lines", "Use"], rows))
    print(f"\ntotal user code: {total} lines "
          f"(paper: {paper_reference.TABLE3_TOTAL_GRAVITY_LOC} lines of C++; "
          f"ChaNGa's Barnes-Hut-specific code: ~{paper_reference.TABLE3_CHANGA_LOC})")
    print(format_table(
        ["Filename", "Line count", "Use"],
        paper_reference.TABLE3,
        title="\n(paper Table III)",
    ))

    # The productivity claim: each user artefact is a small file, the total
    # stays within ~3x of the paper's 135 C++ lines (Python and C++ count
    # differently; the order of magnitude is the claim), and the whole
    # application is dwarfed by ChaNGa's 4500 lines.
    for name, count, _ in rows:
        assert count < 200, f"{name} has ballooned to {count} lines"
    assert total < 3 * paper_reference.TABLE3_TOTAL_GRAVITY_LOC
    assert total < 0.15 * paper_reference.TABLE3_CHANGA_LOC
