"""Shared workload construction for the scaling benchmarks.

Every scaling figure starts the same way: run one *real* traversal at
laptop scale with interaction-list recording, then hand the resulting
:class:`~repro.runtime.workload.WorkloadSpec` to the DES for each
(process count, cache model, machine) combination.  Building the traversal
is the expensive part, so results are memoised per parameter tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..apps.gravity import GravityVisitor, compute_centroid_arrays
from ..apps.sph import gadget_style_density
from ..core import InteractionLists, TraversalStats, get_traverser
from ..decomp import Decomposition, decompose, get_decomposer
from ..particles import clustered_clumps, keplerian_disk, uniform_cube
from ..runtime import CostModel, WorkloadSpec, workload_from_traversal
from ..trees import Tree, build_tree

__all__ = ["GravityWorkload", "build_gravity_workload", "build_sph_workloads"]

_GENERATORS = {
    "uniform": uniform_cube,
    "clustered": clustered_clumps,
    "disk": keplerian_disk,
}


@dataclass
class GravityWorkload:
    """Everything a scaling bench needs from the real traversal."""

    tree: Tree
    decomposition: Decomposition
    lists: InteractionLists
    workload: WorkloadSpec
    stats: TraversalStats


@lru_cache(maxsize=8)
def build_gravity_workload(
    distribution: str = "clustered",
    n: int = 25_000,
    n_partitions: int = 256,
    n_subtrees: int = 256,
    tree_type: str = "oct",
    decomp_type: str = "sfc",
    theta: float = 0.7,
    bucket_size: int = 16,
    nodes_per_request: int = 2,
    shared_branch_levels: int = 3,
    seed: int = 7,
) -> GravityWorkload:
    """One instrumented Barnes-Hut traversal -> DES workload (memoised)."""
    particles = _GENERATORS[distribution](n, seed=seed)
    tree = build_tree(particles, tree_type=tree_type, bucket_size=bucket_size)
    parts = get_decomposer(decomp_type).assign(tree.particles, n_partitions)
    dec = decompose(tree, parts, n_subtrees=n_subtrees)
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=theta))
    lists = InteractionLists()
    stats = get_traverser("transposed").traverse(tree, visitor, None, lists)
    workload = workload_from_traversal(
        tree, dec, lists, nodes_per_request=nodes_per_request,
        shared_branch_levels=shared_branch_levels,
    )
    return GravityWorkload(tree, dec, lists, workload, stats)


@lru_cache(maxsize=4)
def build_sph_workloads(
    n: int = 12_000,
    k: int = 32,
    n_partitions: int = 256,
    seed: int = 9,
) -> tuple[GravityWorkload, GravityWorkload, int]:
    """The Fig 11 pair: (ParaTreeT kNN workload, Gadget ball workload,
    gadget_rounds).

    Both neighbour engines run for real with recording; the Gadget workload
    carries the summed work of all its smoothing-length iteration rounds.
    """
    particles = uniform_cube(n, seed=seed)
    tree = build_tree(particles, tree_type="oct", bucket_size=16)
    parts = get_decomposer("sfc").assign(tree.particles, n_partitions)
    dec = decompose(tree, parts, n_subtrees=n_partitions)

    # ParaTreeT: a single recorded kNN traversal.
    knn_lists = InteractionLists()
    from ..apps.knn.knn import KNNVisitor

    visitor = KNNVisitor(tree, k)
    knn_stats = get_traverser("up-and-down").traverse(tree, visitor, None, knn_lists)
    knn_wl = workload_from_traversal(tree, dec, knn_lists)

    # Gadget-2 style: the per-round stats give the work multiplier, and one
    # recorded full ball pass at the converged radii gives the spatial
    # fetch pattern.
    gadget_lists = InteractionLists()
    gadget = gadget_style_density(tree, k=k, tol=2)
    from ..apps.knn.balls import BallSearchVisitor

    ball_visitor = BallSearchVisitor(tree, gadget.h, include_self=False)
    get_traverser("per-bucket").traverse(tree, ball_visitor, None, gadget_lists)
    gadget_wl = workload_from_traversal(tree, dec, gadget_lists)
    # Scale every bucket's work by the measured rounds ratio so total work
    # matches what the iteration actually cost.
    cost = CostModel()
    measured = (
        gadget.stats.opens * cost.c_open
        + gadget.stats.pn_interactions * cost.c_pn
        + gadget.stats.pp_interactions * cost.c_pp
    )
    scale = measured / max(gadget_wl.total_work, 1e-30)
    for bucket in gadget_wl.buckets:
        for g in bucket.work_by_group:
            bucket.work_by_group[g] *= scale

    knn_gw = GravityWorkload(tree, dec, knn_lists, knn_wl, knn_stats)
    gadget_gw = GravityWorkload(tree, dec, gadget_lists, gadget_wl, gadget.stats)
    return knn_gw, gadget_gw, gadget.n_rounds
