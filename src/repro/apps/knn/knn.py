"""k-nearest-neighbour search as an up-and-down traversal.

The Visitor keeps, per particle, its current k best squared distances; a
source node is opened only while its box is closer to the target bucket
than the bucket's worst current k-th distance.  Starting the up-and-down
walk at the target's own leaf makes that radius finite almost immediately,
and the ``done``/``path_advanced`` hooks stop the climb as soon as the
search ball is contained in already-visited space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import TraversalStats, get_traverser
from ...core.util import ranges_to_indices
from ...core.visitor import Visitor
from ...geometry.box import boxes_box_distance_sq
from ...trees import SpatialNode, Tree

__all__ = ["KNNResult", "KNNVisitor", "knn_search", "brute_force_knn"]


@dataclass
class KNNResult:
    """Neighbour lists in *tree order*: row i describes particle i of
    ``tree.particles``; columns are sorted nearest-first."""

    dist_sq: np.ndarray  # (N, k)
    index: np.ndarray    # (N, k) neighbour particle indices (tree order)
    stats: TraversalStats


class KNNVisitor(Visitor):
    """Finds the k nearest *other* particles for every target particle."""

    def __init__(self, tree: Tree, k: int) -> None:
        n = tree.n_particles
        if not 1 <= k <= n - 1:
            raise ValueError(f"k must be in [1, {n - 1}], got {k}")
        self.tree = tree
        self.k = k
        self.dist_sq = np.full((n, k), np.inf)
        self.index = np.full((n, k), -1, dtype=np.int64)
        #: worst current neighbour distance per particle
        self.kth_sq = np.full(n, np.inf)
        #: per-target-leaf: box of tree covered so far (up-and-down path)
        self._covered: dict[int, int] = {}

    # -- pruning ---------------------------------------------------------------
    def _bucket_radius_sq(self, tgt: int) -> float:
        s, e = int(self.tree.pstart[tgt]), int(self.tree.pend[tgt])
        return float(self.kth_sq[s:e].max())

    def open(self, source: SpatialNode, target: SpatialNode) -> bool:
        t = self.tree
        d2 = boxes_box_distance_sq(
            t.box_lo[source.index], t.box_hi[source.index],
            t.box_lo[target.index], t.box_hi[target.index],
        )
        return bool(d2 <= self._bucket_radius_sq(target.index))

    def open_sources(self, tree: Tree, sources: np.ndarray, target: int) -> np.ndarray:
        d2 = boxes_box_distance_sq(
            tree.box_lo[sources], tree.box_hi[sources],
            tree.box_lo[target], tree.box_hi[target],
        )
        return d2 <= self._bucket_radius_sq(target)

    # -- interactions -------------------------------------------------------------
    def node(self, source: SpatialNode, target: SpatialNode) -> None:
        """Pruned nodes contribute nothing to a neighbour search."""

    def node_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        pass

    def leaf(self, source: SpatialNode, target: SpatialNode) -> None:
        self._merge(np.array([source.index]), target.index)

    def leaf_sources(self, tree: Tree, sources: np.ndarray, target: int) -> None:
        self._merge(np.asarray(sources), target)

    def _merge(self, sources: np.ndarray, target: int) -> None:
        t = self.tree
        ts, te = int(t.pstart[target]), int(t.pend[target])
        tgt_idx = np.arange(ts, te)
        cand = ranges_to_indices(t.pstart[sources], t.pend[sources])
        if len(cand) == 0:
            return
        pos = t.particles.position
        d = pos[cand][None, :, :] - pos[tgt_idx][:, None, :]
        d2 = np.einsum("tcj,tcj->tc", d, d)
        # Exclude self-pairs by index, not by zero distance (coincident
        # particles are legitimate neighbours).
        d2[tgt_idx[:, None] == cand[None, :]] = np.inf
        # Merge candidates into the running top-k.
        all_d2 = np.concatenate([self.dist_sq[ts:te], d2], axis=1)
        all_idx = np.concatenate(
            [self.index[ts:te], np.broadcast_to(cand, d2.shape)], axis=1
        )
        if all_d2.shape[1] > self.k:
            sel = np.argpartition(all_d2, self.k - 1, axis=1)[:, : self.k]
            rows = np.arange(len(tgt_idx))[:, None]
            self.dist_sq[ts:te] = all_d2[rows, sel]
            self.index[ts:te] = all_idx[rows, sel]
        else:
            self.dist_sq[ts:te] = all_d2
            self.index[ts:te] = all_idx
        self.kth_sq[ts:te] = self.dist_sq[ts:te].max(axis=1)

    # -- parallel-execution protocol (repro.exec) ---------------------------
    # Every write lands on rows [pstart, pend) of the target bucket being
    # traversed (dist_sq/index/kth_sq), and _covered is keyed by target
    # leaf — so disjoint target chunks touch disjoint state.
    exec_shareable = True

    def exec_config(self) -> dict:
        return {"k": self.k}

    @classmethod
    def exec_rebuild(cls, tree: Tree, arrays: dict[str, np.ndarray], config: dict) -> "KNNVisitor":
        return cls(tree, config["k"])

    def exec_collect(self, tree: Tree, targets: np.ndarray) -> dict[str, np.ndarray]:
        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        return {"dist_sq": self.dist_sq[rows], "index": self.index[rows]}

    def exec_apply(self, tree: Tree, targets: np.ndarray, outputs: dict[str, np.ndarray]) -> None:
        rows = ranges_to_indices(tree.pstart[targets], tree.pend[targets])
        self.dist_sq[rows] = outputs["dist_sq"]
        self.index[rows] = outputs["index"]
        self.kth_sq[rows] = self.dist_sq[rows].max(axis=1)

    # -- best-first support (priority traversal) ---------------------------
    def priority(self, tree: Tree, source: int, target: int) -> float:
        """Expansion key for the priority traverser: nearer nodes first, so
        the k-th distance tightens before distant subtrees are considered."""
        return float(
            boxes_box_distance_sq(
                tree.box_lo[source], tree.box_hi[source],
                tree.box_lo[target], tree.box_hi[target],
            )
        )

    # -- early exit ------------------------------------------------------------
    def path_advanced(self, target: SpatialNode, path_node: SpatialNode) -> None:
        self._covered[target.index] = path_node.index

    def done(self, target: SpatialNode) -> bool:
        covered = self._covered.get(target.index)
        if covered is None:
            return False
        r2 = self._bucket_radius_sq(target.index)
        if not np.isfinite(r2):
            return False
        r = np.sqrt(r2)
        t = self.tree
        return bool(
            np.all(t.box_lo[target.index] - r >= t.box_lo[covered])
            and np.all(t.box_hi[target.index] + r <= t.box_hi[covered])
        )


def knn_search(
    tree: Tree,
    k: int,
    targets: np.ndarray | None = None,
    traverser: str = "up-and-down",
    backend=None,
) -> KNNResult:
    """k nearest neighbours of every particle (or of ``targets``' buckets).

    Rows are sorted nearest-first.  Neighbour indices refer to tree order;
    use ``tree.particles.orig_index`` to translate back to input labels.
    ``backend`` (a :class:`~repro.exec.ExecutionBackend`) runs the search
    over target-bucket chunks concurrently, bit-identically to serial.
    """
    visitor = KNNVisitor(tree, k)
    if backend is not None:
        stats = backend.run(tree, traverser, visitor, targets)
    else:
        stats = get_traverser(traverser).traverse(tree, visitor, targets)
    order = np.argsort(visitor.dist_sq, axis=1)
    rows = np.arange(tree.n_particles)[:, None]
    return KNNResult(
        dist_sq=visitor.dist_sq[rows, order],
        index=visitor.index[rows, order],
        stats=stats,
    )


def brute_force_knn(positions: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Reference O(N²) kNN (excluding self): returns (dist_sq, index)."""
    positions = np.asarray(positions)
    n = len(positions)
    if not 1 <= k <= n - 1:
        raise ValueError(f"k must be in [1, {n - 1}]")
    d = positions[None, :, :] - positions[:, None, :]
    d2 = np.einsum("ijc,ijc->ij", d, d)
    np.fill_diagonal(d2, np.inf)
    sel = np.argpartition(d2, k - 1, axis=1)[:, :k]
    rows = np.arange(n)[:, None]
    dist = d2[rows, sel]
    order = np.argsort(dist, axis=1)
    return dist[rows, order], sel[rows, order]
