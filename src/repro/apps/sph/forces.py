"""Pressure field and pairwise SPH pressure forces (paper §III-B).

"This neighbor list is then used to model the pressure field surrounding
each particle.  A pressure force, which is determined by the gradient of
this field, is then applied to pairs of particles."

The standard symmetrised momentum equation is used:

``a_i = − Σ_j m_j (P_i/ρ_i² + P_j/ρ_j²) ∇W(r_ij, h̄_ij)``

with ``h̄`` the arithmetic mean of the pair's smoothing lengths.
"""

from __future__ import annotations

import numpy as np

from ...trees import Tree
from ..knn import KNNResult
from .kernels import cubic_spline_gradW_over_r

__all__ = ["equation_of_state", "compute_pressure_forces"]


def equation_of_state(
    density: np.ndarray,
    internal_energy: np.ndarray | float | None = None,
    gamma: float = 5.0 / 3.0,
    sound_speed: float | None = None,
) -> np.ndarray:
    """Pressure from density.

    Adiabatic ideal gas ``P = (γ−1) ρ u`` when ``internal_energy`` is given,
    isothermal ``P = c_s² ρ`` when ``sound_speed`` is given.
    """
    density = np.asarray(density, dtype=np.float64)
    if internal_energy is not None:
        return (gamma - 1.0) * density * np.asarray(internal_energy, dtype=np.float64)
    if sound_speed is not None:
        return sound_speed**2 * density
    raise ValueError("provide internal_energy or sound_speed")


def compute_pressure_forces(
    tree: Tree,
    neighbors: KNNResult,
    density: np.ndarray,
    pressure: np.ndarray,
    h: np.ndarray,
) -> np.ndarray:
    """Symmetrised pairwise pressure accelerations -> (N, 3), tree order.

    Evaluated over the kNN neighbour lists (each pair contributes through
    both particles' lists; using the pair-mean smoothing length keeps the
    interaction antisymmetric up to list asymmetry, which is the standard
    treatment when neighbour lists are truncated at fixed k).
    """
    pos = tree.particles.position
    mass = tree.particles.mass
    n, k = neighbors.index.shape
    i = np.repeat(np.arange(n), k)
    j = neighbors.index.ravel()
    valid = j >= 0
    i, j = i[valid], j[valid]

    dvec = pos[i] - pos[j]
    r = np.linalg.norm(dvec, axis=1)
    h_pair = 0.5 * (h[i] + h[j])
    gw = cubic_spline_gradW_over_r(r, h_pair)  # (dW/dr)/r
    with np.errstate(divide="ignore", invalid="ignore"):
        coef = -mass[j] * (
            pressure[i] / np.maximum(density[i], 1e-300) ** 2
            + pressure[j] / np.maximum(density[j], 1e-300) ** 2
        ) * gw
    acc = np.zeros((n, 3))
    np.add.at(acc, i, coef[:, None] * dvec)
    return acc
