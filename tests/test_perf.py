"""The performance observatory: harness statistics, BENCH round-trips,
regression gating, and DES critical-path analysis.

Covers the acceptance bars the PR promises:

* robust statistics (median/IQR, 5x-MAD outlier rejection);
* BENCH documents round-trip through write/load with schema validation;
* the regression detector flags an artificial 2x slowdown and exits 0 on
  identical runs;
* the critical-path extractor returns the longest chain on a hand-built
  event graph and its components tile ``[0, makespan]`` exactly;
* ``critical_path=True`` on a real DES run attributes the end-to-end
  simulated time within 1% without perturbing the simulation itself.
"""

import json

import pytest

from repro.__main__ import main
from repro.bench import build_gravity_workload
from repro.cache import SEQUENTIAL, WAITFREE
from repro.perf import (
    BenchmarkRegistry,
    CPRecorder,
    analyze_critical_path,
    benchmark,
    compare_reports,
    format_components,
    format_report,
    load_report,
    robust_stats,
    run_one,
    run_suite,
    validate_report,
    write_report,
)
from repro.runtime import STAMPEDE2, simulate_traversal


class TestRobustStats:
    def test_median_iqr_odd_even(self):
        s = robust_stats([3.0, 1.0, 2.0])
        assert s["median"] == 2.0
        s = robust_stats([1.0, 2.0, 3.0, 4.0])
        assert s["median"] == 2.5
        assert s["iqr"] == pytest.approx(1.5)

    def test_outlier_rejection_5_mad(self):
        # nine tight samples + one 100x burst: the burst is rejected and
        # leaves the median untouched.
        samples = [1.0, 1.01, 0.99, 1.0, 1.02, 0.98, 1.0, 1.01, 0.99, 100.0]
        s = robust_stats(samples)
        assert s["n_outliers"] == 1
        assert s["n_samples"] == 10
        assert s["median"] == pytest.approx(1.0, abs=0.02)
        assert s["max"] < 2.0

    def test_degenerate_counts(self):
        assert robust_stats([])["median"] is None
        one = robust_stats([0.5])
        assert one["median"] == 0.5 and one["iqr"] == 0.0
        two = robust_stats([1.0, 2.0])  # too few for rejection
        assert two["n_outliers"] == 0

    def test_identical_samples_zero_spread(self):
        s = robust_stats([2.0] * 5)
        assert s["median"] == 2.0
        assert s["iqr"] == 0.0 and s["mad"] == 0.0 and s["n_outliers"] == 0


def _fake_registry(step_s: float = 1e-3):
    """A private registry with one benchmark whose 'runtime' is dictated by
    an injected timer (each ``timer()`` call advances by ``step_s``)."""
    reg = BenchmarkRegistry()

    @benchmark("fake.unit", group="fake", description="deterministic",
               registry=reg, repeats=5, warmup=1)
    def fake_unit(quick=False):
        return lambda: {"touched": True}

    class Clock:
        def __init__(self):
            self.t = 0.0

        def __call__(self):
            self.t += step_s
            return self.t

    return reg, Clock()


class TestHarness:
    def test_run_one_with_injected_timer(self):
        reg, clock = _fake_registry(step_s=2e-3)
        res = run_one(reg.get("fake.unit"), timer=clock)
        assert res["median"] == pytest.approx(2e-3)
        assert res["iqr"] == pytest.approx(0.0)
        assert res["n_samples"] == 5
        assert res["extra"] == {"touched": True}

    def test_setup_must_return_callable(self):
        reg = BenchmarkRegistry()

        @benchmark("bad.setup", registry=reg)
        def bad(quick=False):
            return 42  # not callable

        res = run_one(reg.get("bad.setup"))
        assert "error" in res and "zero-arg callable" in res["error"]

    def test_erroring_benchmark_does_not_abort_suite(self):
        reg = BenchmarkRegistry()

        @benchmark("ok.one", registry=reg)
        def ok(quick=False):
            return lambda: None

        @benchmark("broken.one", registry=reg)
        def broken(quick=False):
            raise RuntimeError("boom")

        report = run_suite(registry=reg, discover_first=False, repeats=1,
                           warmup=0)
        by_id = {r["id"]: r for r in report["results"]}
        assert "error" in by_id["broken.one"]
        assert by_id["ok.one"]["median"] is not None

    def test_report_round_trip_and_schema(self, tmp_path):
        reg, _ = _fake_registry()
        report = run_suite(registry=reg, discover_first=False, quick=True,
                           repeats=2, warmup=0)
        assert report["schema"] == "repro-bench"
        assert report["environment"]["python"]
        path = write_report(report, tmp_path / "BENCH_t.json",
                            artifacts_dir=tmp_path / "artifacts")
        loaded = load_report(path)
        assert loaded == json.loads(json.dumps(report))  # JSON-stable
        art = tmp_path / "artifacts" / "fake.unit.json"
        assert json.loads(art.read_text())["result"]["id"] == "fake.unit"
        assert "fake.unit" in format_report(loaded)

    def test_validation_rejects_bad_documents(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            validate_report({"schema": "other", "results": []})
        with pytest.raises(ValueError, match="schema_version"):
            validate_report({"schema": "repro-bench", "schema_version": 99,
                             "results": []})
        with pytest.raises(ValueError, match="no median"):
            validate_report({"schema": "repro-bench", "schema_version": 1,
                             "results": [{"id": "x"}]})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(bad)

    def test_registry_glob_selection(self):
        reg = BenchmarkRegistry()
        for bench_id in ("des.a", "des.b", "gravity.c"):
            benchmark(bench_id, registry=reg)(lambda quick=False: (lambda: None))
        assert [d.id for d in reg.select(["des.*"])] == ["des.a", "des.b"]
        assert len(reg.select(None)) == 3
        with pytest.raises(KeyError, match="no benchmark matches"):
            reg.select(["nope.*"])


def _suite_with_timer(step_s):
    reg, clock = _fake_registry(step_s=step_s)
    res = run_one(reg.get("fake.unit"), timer=clock)
    return {"schema": "repro-bench", "schema_version": 1,
            "created": "t", "quick": False,
            "environment": {"python": "3", "numpy": "2", "cpu_count": 1},
            "results": [res]}


class TestRegressionGate:
    def test_identical_runs_pass(self):
        base = _suite_with_timer(1e-3)
        new = _suite_with_timer(1e-3)
        result = compare_reports(base, new)
        assert result.passed and result.exit_code == 0
        assert result.deltas[0].verdict == "ok"
        assert "PASS" in result.format()

    def test_artificial_2x_slowdown_detected(self):
        base = _suite_with_timer(1e-3)
        new = _suite_with_timer(2e-3)  # exactly 2x slower
        result = compare_reports(base, new)
        assert not result.passed and result.exit_code == 1
        d = result.deltas[0]
        assert d.regressed and d.ratio == pytest.approx(2.0)
        assert "regression" in result.markdown()

    def test_2x_speedup_is_improvement_not_failure(self):
        base = _suite_with_timer(2e-3)
        new = _suite_with_timer(1e-3)
        result = compare_reports(base, new)
        assert result.passed
        assert result.deltas[0].improved

    def test_noise_scaled_threshold(self):
        # identical medians but huge IQR in the new run: the 3x-IQR term
        # dominates and a modest delta stays under it.
        base = _suite_with_timer(1e-3)
        new = _suite_with_timer(1e-3)
        new["results"][0]["median"] = 1.2e-3     # +20% < 25% floor
        result = compare_reports(base, new)
        assert result.passed
        # push past the floor, then widen the noise band until it passes
        new["results"][0]["median"] = 1.3e-3     # +30% > 25% floor
        assert not compare_reports(base, new).passed
        new["results"][0]["iqr"] = 2e-4          # 3 x 0.2ms = 0.6ms threshold
        assert compare_reports(base, new).passed

    def test_membership_and_error_accounting(self):
        base = _suite_with_timer(1e-3)
        new = _suite_with_timer(1e-3)
        base["results"].append({"id": "gone.one", "median": 1.0, "iqr": 0.0})
        new["results"].append({"id": "new.one", "median": 1.0, "iqr": 0.0})
        new["results"].append({"id": "err.one", "error": "boom"})
        base["results"].append({"id": "err.one", "median": 1.0, "iqr": 0.0})
        result = compare_reports(base, new)
        assert result.missing == ["gone.one"]
        assert result.added == ["new.one"]
        assert result.errored == ["err.one"]

    def test_quick_and_environment_mismatch_warn(self):
        base = _suite_with_timer(1e-3)
        new = _suite_with_timer(1e-3)
        new["quick"] = True
        new["environment"]["numpy"] = "3"
        result = compare_reports(base, new)
        assert any("quick-mode mismatch" in w for w in result.warnings)
        assert any("environment mismatch: numpy" in w for w in result.warnings)


class TestCriticalPathAnalyzer:
    def test_longest_chain_on_hand_built_graph(self):
        # Diamond: a enables (b | c); d waits for both.  The long arm goes
        # through c, so the critical path must be a -> c -> d and the short
        # arm b must not appear.
        rec = CPRecorder()
        a = rec.add("a", "compute", 0.0, 1.0)
        b = rec.add("b", "compute", 1.0, 2.0, preds=(a,))
        c = rec.add("c", "latency", 1.0, 5.0, preds=(a,))
        rec.add("d", "compute", 5.0, 7.0, preds=(b, c))
        report = analyze_critical_path(rec)
        assert [s.label for s in report.segments] == ["a", "c", "d"]
        assert report.makespan == 7.0
        assert report.components["compute"] == pytest.approx(3.0)
        assert report.components["latency"] == pytest.approx(4.0)
        assert report.attributed_total == pytest.approx(report.makespan)

    def test_segments_tile_zero_to_makespan(self):
        rec = CPRecorder()
        a = rec.add("a", "compute", 0.5, 1.0)   # starts after t=0
        rec.add("b", "compute", 3.0, 4.0, preds=(a,))  # 2s unmodelled gap
        report = analyze_critical_path(rec, makespan=4.5)  # trailing join
        segs = sorted(report.segments, key=lambda s: s.start)
        assert segs[0].start == 0.0 and segs[-1].end == 4.5
        for prev, cur in zip(segs[:-1], segs[1:]):
            assert cur.start == pytest.approx(prev.end)
        labels = [s.label for s in segs]
        assert "origin wait" in labels       # 0 -> 0.5, nothing recorded
        assert "unattributed wait" in labels  # 1.0 -> 3.0 gap
        assert "join" in labels              # 4.0 -> 4.5 clock tail
        assert report.attributed_total == pytest.approx(4.5)

    def test_resource_availability_edge_truncates_wait(self):
        # A queue-wait node spanning [0, 9] whose resource was freed at
        # t=8 must contribute only [8, 9] to the chain: the walk descends
        # through the freeing task, not the whole wait.
        rec = CPRecorder()
        t1 = rec.add("task1", "compute", 0.0, 8.0, resource="w0")
        wait = rec.add("wait", "queue", 0.0, 9.0, resource="w0", preds=(t1,))
        rec.add("task2", "compute", 9.0, 10.0, resource="w0", preds=(wait,))
        report = analyze_critical_path(rec)
        by_label = report.by_label
        assert by_label["wait"] == pytest.approx(1.0)
        assert by_label["task1"] == pytest.approx(8.0)
        assert report.components["queue"] == pytest.approx(1.0)
        assert report.attributed_total == pytest.approx(10.0)

    def test_empty_recorder_is_all_barrier(self):
        report = analyze_critical_path(CPRecorder(), makespan=2.0)
        assert report.components["barrier"] == 2.0
        assert report.attributed_total == pytest.approx(2.0)

    def test_recorder_rejects_bad_nodes(self):
        rec = CPRecorder()
        with pytest.raises(ValueError, match="ends before it starts"):
            rec.add("x", "compute", 2.0, 1.0)
        with pytest.raises(ValueError, match="does not exist"):
            rec.add("x", "compute", 0.0, 1.0, preds=(5,))
        rec.add("ok", "compute", 0.0, 1.0, preds=(None,))  # Nones filtered
        assert rec.nodes[0].preds == ()

    def test_format_components_renders_all_kinds(self):
        line = format_components({"compute": 0.001, "latency": 0.003})
        for kind in ("compute", "latency", "queue", "barrier"):
            assert kind in line
        assert "(25%)" in line and "(75%)" in line


@pytest.fixture(scope="module")
def small_workload():
    return build_gravity_workload(
        distribution="clustered", n=2_500, n_partitions=32, n_subtrees=32,
        seed=7,
    ).workload


class TestDesCriticalPath:
    @pytest.mark.parametrize("cache_model", [WAITFREE, SEQUENTIAL])
    def test_components_sum_to_simulated_time(self, small_workload, cache_model):
        r = simulate_traversal(
            small_workload, machine=STAMPEDE2, n_processes=4,
            workers_per_process=4, cache_model=cache_model,
            critical_path=True, collect_trace=True,
        )
        cp = r.critical_path
        assert cp is not None
        assert cp.makespan == pytest.approx(r.time, rel=1e-9)
        # the acceptance bar: attribution within 1% of end-to-end time
        # (by construction it is exact; the tolerance guards refactors).
        assert cp.attributed_total == pytest.approx(r.time, rel=0.01)
        assert all(v >= -1e-12 for v in cp.components.values())

    def test_observer_does_not_perturb_simulation(self, small_workload):
        plain = simulate_traversal(
            small_workload, machine=STAMPEDE2, n_processes=4,
            workers_per_process=4, cache_model=WAITFREE,
        )
        observed = simulate_traversal(
            small_workload, machine=STAMPEDE2, n_processes=4,
            workers_per_process=4, cache_model=WAITFREE,
            critical_path=True, collect_trace=True,
        )
        assert observed.time == plain.time  # bit-identical
        assert observed.events == plain.events

    def test_report_serializes_and_formats(self, small_workload):
        r = simulate_traversal(
            small_workload, machine=STAMPEDE2, n_processes=2,
            workers_per_process=4, critical_path=True,
        )
        doc = r.critical_path.to_dict()
        json.dumps(doc)  # JSON-clean
        assert doc["n_segments"] == len(doc["segments"])
        assert sum(doc["components"].values()) == pytest.approx(doc["makespan"])
        text = r.critical_path.format()
        assert "critical path:" in text and "compute=" in text


class TestBenchCli:
    def test_run_report_compare_round_trip(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "BENCH_a.json"
        assert main(["bench", "run", "--quick", "meta.loc_count",
                     "-o", str(out)]) == 0
        assert load_report(out)["results"][0]["id"] == "meta.loc_count"
        capsys.readouterr()

        assert main(["bench", "report", str(out)]) == 0
        assert "meta.loc_count" in capsys.readouterr().out

        # identical files: PASS, exit 0, markdown written
        md = tmp_path / "cmp.md"
        assert main(["bench", "compare", str(out), str(out),
                     "--markdown", str(md)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert "✅ pass" in md.read_text()

    def test_compare_detects_doubled_medians(self, tmp_path, capsys):
        base = _suite_with_timer(1e-3)
        slow = _suite_with_timer(2e-3)
        b, s = tmp_path / "base.json", tmp_path / "slow.json"
        b.write_text(json.dumps(base))
        s.write_text(json.dumps(slow))
        assert main(["bench", "compare", str(b), str(s)]) == 1
        assert "FAIL" in capsys.readouterr().out
        # --warn-only converts the gate into advice (for the CI smoke job)
        assert main(["bench", "compare", str(b), str(s), "--warn-only"]) == 0

    def test_compare_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["bench", "compare", str(bad), str(bad)]) == 2

    def test_compare_missing_baseline_one_line_error(self, tmp_path, capsys):
        """A missing file names the role and the path in one line — no
        traceback, exit 2 (usage error, not a regression failure)."""
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_suite_with_timer(1e-3)))
        missing = tmp_path / "nope" / "BENCH_main.json"
        assert main(["bench", "compare", str(missing), str(good)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert f"error: baseline BENCH file not found: {missing}" in err
        assert "Traceback" not in err

    def test_compare_missing_new_file_names_role(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_suite_with_timer(1e-3)))
        missing = tmp_path / "BENCH_pr.json"
        assert main(["bench", "compare", str(good), str(missing)]) == 2
        assert f"error: new BENCH file not found: {missing}" in \
            capsys.readouterr().err

    def test_compare_newer_schema_hints_regenerate(self, tmp_path, capsys):
        """A file written by a newer build fails with the schema_version
        in the message and a hint to regenerate, instead of a KeyError
        deep inside the comparator."""
        future = dict(_suite_with_timer(1e-3), schema_version=99)
        base, new = tmp_path / "base.json", tmp_path / "new.json"
        base.write_text(json.dumps(_suite_with_timer(1e-3)))
        new.write_text(json.dumps(future))
        assert main(["bench", "compare", str(base), str(new)]) == 2
        err = capsys.readouterr().err
        assert "error: new BENCH file" in err
        assert "schema_version" in err
        assert "newer build" in err and "repro bench run" in err

    def test_list_names_all_registered_benchmarks(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for bench_id in ("des.fig9_profile", "gravity.bucket16",
                         "e2e.disk_steps", "meta.loc_count"):
            assert bench_id in out
