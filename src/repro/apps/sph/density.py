"""Density estimation via k-nearest neighbours (the ParaTreeT way).

"Each iteration of SPH starts with a k-nearest neighbors traversal for each
particle to find its principal contributors of density.  Each neighbor's
mass and distance is summed and weighted with a smoothing kernel to
determine the density of the target."  The smoothing length is *defined* by
the k-th neighbour distance, so one traversal fixes both h and ρ — this is
the algorithmic edge over the Gadget-2 ball iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core import TraversalStats
from ...trees import Tree
from ..knn import KNNResult, knn_search
from .kernels import KERNELS

__all__ = ["SPHState", "compute_density_knn", "density_from_neighbors"]


@dataclass
class SPHState:
    """Per-particle SPH quantities, in tree order."""

    h: np.ndarray        # (N,) smoothing length (support radius)
    density: np.ndarray  # (N,)
    neighbors: KNNResult | None
    stats: TraversalStats


def density_from_neighbors(
    tree: Tree,
    nbr_index: np.ndarray,
    nbr_dist_sq: np.ndarray,
    h: np.ndarray,
    kernel: str = "cubic",
) -> np.ndarray:
    """Kernel-weighted mass sum over given neighbour lists (+ self term).

    ``kernel`` selects from :data:`repro.apps.sph.kernels.KERNELS`
    ("cubic", "wendland_c2", "wendland_c4").
    """
    W, _ = KERNELS[kernel]
    mass = tree.particles.mass
    r = np.sqrt(nbr_dist_sq)
    w = W(r, h[:, None])
    rho = np.einsum("nk,nk->n", mass[nbr_index], w)
    rho += mass * W(np.zeros(len(h)), h)  # self contribution
    return rho


def compute_density_knn(
    tree: Tree,
    k: int = 32,
    eta: float = 1.001,
    targets: np.ndarray | None = None,
    kernel: str = "cubic",
    backend=None,
) -> SPHState:
    """One kNN traversal → smoothing lengths and densities.

    ``h_i = eta * d_k(i)``: the support radius is (just over) the k-th
    neighbour distance, so exactly the k found neighbours contribute.
    ``backend`` runs the neighbour traversal through a ``repro.exec``
    execution backend (bit-identical to serial).
    """
    result = knn_search(tree, k, targets=targets, backend=backend)
    h = eta * np.sqrt(result.dist_sq[:, -1])
    # Degenerate protection: coincident particle piles can give d_k == 0.
    floor = 1e-12 * max(float(np.max(tree.box_hi[0] - tree.box_lo[0])), 1.0)
    h = np.maximum(h, floor)
    rho = density_from_neighbors(tree, result.index, result.dist_sq, h, kernel=kernel)
    return SPHState(h=h, density=rho, neighbors=result, stats=result.stats)
