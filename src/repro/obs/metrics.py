"""Metrics registry: counters, gauges, and histograms with labels.

One :class:`MetricsRegistry` per telemetry session.  Instruments are
identified by ``(name, labels)`` — asking for the same pair twice returns
the same instrument, so call sites can use
``registry.counter("cache.hits", model="WaitFree").inc()`` without holding
references.  ``absorb_*`` helpers fold the repo's pre-existing stats
objects (:class:`~repro.core.traverser.TraversalStats`,
:class:`~repro.cache.stats.FetchStats`, memsim
:class:`~repro.memsim.cache.CacheStats`, and
:class:`~repro.core.driver.IterationReport`) into the registry so one
exporter sees every counter the paper tabulates (Table II, cache
hit/request counts, per-iteration imbalance).
"""

from __future__ import annotations

from typing import Any, Iterable

from .hist import Log2Histogram

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Latency",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Last-written value (can move both ways)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket histogram plus running count/sum/min/max."""

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: LabelKey,
                 bounds: Iterable[float] = ()) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        i = 0
        for i, b in enumerate(self.bounds):
            if value <= b:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[len(self.bounds)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name, "type": self.kind, "labels": dict(self.labels),
            "count": self.count, "sum": self.sum, "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bounds": list(self.bounds), "bucket_counts": list(self.bucket_counts),
        }


class Latency:
    """Mergeable log₂-bucketed latency distribution with quantiles.

    A thin instrument wrapper around :class:`~repro.obs.hist.Log2Histogram`;
    worker-side forks (from :meth:`fork`) merge back deterministically via
    :meth:`merge`, which is how the parallel exec backends reduce
    per-worker timings recorded on worker clocks."""

    kind = "latency"
    __slots__ = ("name", "labels", "hist")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.hist = Log2Histogram()

    def observe(self, value: float) -> None:
        self.hist.observe(value)

    def observe_many(self, values) -> None:
        self.hist.observe_many(values)

    def fork(self) -> Log2Histogram:
        return self.hist.fork()

    def merge(self, other: Log2Histogram) -> None:
        self.hist.merge(other.hist if isinstance(other, Latency) else other)

    def quantile(self, q: float) -> float:
        return self.hist.quantile(q)

    def quantiles(self) -> dict[str, float]:
        return self.hist.quantiles()

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def sum(self) -> float:
        return self.hist.sum

    @property
    def mean(self) -> float:
        return self.hist.mean

    def snapshot(self) -> dict[str, Any]:
        return {"name": self.name, "type": self.kind,
                "labels": dict(self.labels), **self.hist.to_dict()}


class MetricsRegistry:
    """Get-or-create store of labelled instruments."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], **kwargs):
        kind = self._kinds.setdefault(name, cls.kind)
        if kind != cls.kind:
            raise TypeError(f"metric {name!r} already registered as a {kind}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, key[1], **kwargs)
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, bounds: Iterable[float] = (), **labels: Any) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def latency(self, name: str, **labels: Any) -> Latency:
        return self._get(Latency, name, labels)

    # -- inspection ---------------------------------------------------------
    def collect(self) -> list[dict[str, Any]]:
        """Stable-ordered snapshots of every instrument."""
        return [m.snapshot() for _, m in sorted(self._metrics.items())]

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge (KeyError when absent)."""
        metric = self._metrics[(name, _label_key(labels))]
        return metric.value  # type: ignore[union-attr]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all label sets."""
        return sum(
            m.value for (n, _), m in self._metrics.items()
            if n == name and not isinstance(m, (Histogram, Latency))
        )

    def __len__(self) -> int:
        return len(self._metrics)

    # -- absorb helpers -----------------------------------------------------
    def absorb_traversal_stats(self, stats, **labels: Any) -> None:
        """Fold a :class:`TraversalStats` into ``traversal.*`` counters."""
        for field, value in stats.as_dict().items():
            self.counter(f"traversal.{field}", **labels).inc(value)

    def absorb_fetch_stats(self, fs, **labels: Any) -> None:
        """Fold a :class:`FetchStats` into ``cache.*`` counters (summed over
        simulated processes): requests sent, unique fetches (= cold misses),
        cache hits, and bytes received."""
        labels.setdefault("model", fs.cache_model)
        self.counter("cache.requests", **labels).inc(fs.total_requests)
        self.counter("cache.misses", **labels).inc(float(fs.unique_fetches.sum()))
        self.counter("cache.hits", **labels).inc(fs.total_hits)
        self.counter("cache.bytes", **labels).inc(fs.total_bytes)
        self.gauge("cache.duplication_factor", **labels).set(fs.duplication_factor)

    def absorb_cache_stats(self, stats, level: str, **labels: Any) -> None:
        """Fold a memsim :class:`CacheStats` (one hardware cache level) into
        ``memsim.*`` counters."""
        labels["level"] = level
        self.counter("memsim.load_accesses", **labels).inc(stats.load_accesses)
        self.counter("memsim.load_misses", **labels).inc(stats.load_misses)
        self.counter("memsim.load_hits", **labels).inc(
            stats.load_accesses - stats.load_misses
        )
        self.counter("memsim.store_accesses", **labels).inc(stats.store_accesses)
        self.counter("memsim.store_misses", **labels).inc(stats.store_misses)

    def absorb_fault_counters(self, counters, **labels: Any) -> None:
        """Fold a :class:`~repro.faults.FaultCounters` into ``faults.*``
        counters (drops, duplicates, fill failures, retries, timeouts,
        crash restarts, stragglers)."""
        for name, value in counters.to_dict().items():
            self.counter(f"faults.{name}", **labels).inc(value)

    def absorb_recovery_report(self, report, **labels: Any) -> None:
        """Fold a :class:`~repro.resilience.RecoveryReport` into
        ``recovery.*`` instruments: crash count, state lost, bytes
        refetched from the buddy, and total simulated recovery time."""
        self.counter("recovery.crashes", **labels).inc(report.n_crashes)
        self.counter("recovery.lost_cache_lines", **labels).inc(report.lost_cache_lines)
        self.counter("recovery.lost_bytes", **labels).inc(report.lost_bytes)
        self.counter("recovery.bytes_refetched", **labels).inc(report.bytes_refetched)
        self.counter("recovery.tasks_reissued", **labels).inc(report.tasks_reissued)
        self.gauge("recovery.time", **labels).set(report.recovery_time)

    def absorb_iteration_report(self, report) -> None:
        """Fold one :class:`IterationReport` into driver gauges/counters."""
        it = str(report.iteration)
        self.counter("driver.iterations").inc()
        self.gauge("driver.imbalance", iteration=it).set(report.imbalance)
        self.counter("driver.split_buckets").inc(report.n_split_buckets)
        self.counter("driver.shared_particles").inc(report.n_shared_particles)
        if report.rebalanced:
            self.counter("driver.rebalances").inc()
        hist = self.histogram("driver.partition_load")
        for load in report.partition_loads:
            hist.observe(float(load))
        self.absorb_traversal_stats(report.stats, iteration=it)


class _NullInstrument:
    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def fork(self) -> None:
        return None

    def merge(self, other) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self) -> dict:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """No-op registry used when telemetry is disabled."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds: Iterable[float] = (), **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def latency(self, name: str, **labels: Any) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def collect(self) -> list:
        return []

    def total(self, name: str) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0

    def absorb_traversal_stats(self, stats, **labels: Any) -> None:
        pass

    def absorb_fetch_stats(self, fs, **labels: Any) -> None:
        pass

    def absorb_cache_stats(self, stats, level: str, **labels: Any) -> None:
        pass

    def absorb_fault_counters(self, counters, **labels: Any) -> None:
        pass

    def absorb_recovery_report(self, report, **labels: Any) -> None:
        pass

    def absorb_iteration_report(self, report) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
