"""Particle snapshot I/O.

Snapshots are stored as ``.npz`` archives with one entry per field.  This is
the stand-in for the paper's tipsy-format cosmological inputs: the framework
only needs *some* deterministic on-disk format so runs are reproducible and
examples can checkpoint/restart.

Format version 2 adds a ``__checksums__`` entry — a JSON map of per-field
CRC-32 values (computed over raw bytes + dtype + shape) — verified on load,
so a truncated or bit-flipped archive raises a clear :class:`SnapshotError`
instead of surfacing as a bare numpy/zipfile exception (or worse, loading
silently wrong data).  Version-1 files (no checksums) still load.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from .particles import ParticleSet

__all__ = ["SnapshotError", "save_particles", "load_particles"]

_FORMAT_VERSION = 2


class SnapshotError(ValueError):
    """A particle snapshot could not be read or failed verification."""


def _field_checksum(arr: np.ndarray) -> int:
    arr = np.ascontiguousarray(arr)
    crc = zlib.crc32(arr.tobytes())
    crc = zlib.crc32(str(arr.dtype.str).encode(), crc)
    crc = zlib.crc32(repr(tuple(arr.shape)).encode(), crc)
    return crc & 0xFFFFFFFF


def save_particles(path: str | os.PathLike, particles: ParticleSet) -> None:
    """Write a ParticleSet to ``path`` (npz with per-field checksums)."""
    payload = {f"field_{name}": particles[name] for name in particles.field_names}
    checksums = {name: _field_checksum(arr) for name, arr in payload.items()}
    payload["__version__"] = np.int64(_FORMAT_VERSION)
    payload["__checksums__"] = np.asarray(json.dumps(checksums))
    np.savez_compressed(path, **payload)


def load_particles(path: str | os.PathLike) -> ParticleSet:
    """Read a ParticleSet written by :func:`save_particles`.

    Verifies the per-field checksums when present; raises
    :class:`SnapshotError` on truncated/corrupt archives or checksum
    mismatches."""
    try:
        with np.load(path, allow_pickle=False) as data:
            version = int(data["__version__"]) if "__version__" in data else 0
            if version > _FORMAT_VERSION:
                raise SnapshotError(
                    f"{path}: snapshot version {version} is newer than supported"
                )
            checksums = None
            if "__checksums__" in data.files:
                try:
                    checksums = json.loads(str(data["__checksums__"][()]))
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise SnapshotError(f"{path}: corrupt checksum table ({exc})") from exc
            fields = {
                name[len("field_"):]: data[name]
                for name in data.files
                if name.startswith("field_")
            }
            if checksums is not None:
                missing = sorted(set(checksums) - {f"field_{n}" for n in fields})
                if missing:
                    raise SnapshotError(
                        f"{path}: truncated snapshot, missing fields {missing}"
                    )
                for name, arr in sorted(fields.items()):
                    want = checksums.get(f"field_{name}")
                    if want is None:
                        raise SnapshotError(f"{path}: field {name!r} has no checksum")
                    got = _field_checksum(arr)
                    if got != int(want):
                        raise SnapshotError(
                            f"{path}: checksum mismatch on field {name!r} "
                            f"(recorded {int(want):#010x}, computed {got:#010x})"
                        )
    except SnapshotError:
        raise
    except Exception as exc:
        # zipfile.BadZipFile / OSError / EOFError / ValueError from short
        # reads all mean the same thing to the caller: unreadable snapshot.
        raise SnapshotError(f"{path}: unreadable particle snapshot ({exc})") from exc
    if "position" not in fields:
        raise SnapshotError(f"{path}: not a particle snapshot (missing position)")
    core = {
        "position": fields.pop("position"),
        "velocity": fields.pop("velocity", None),
        "mass": fields.pop("mass", None),
    }
    orig_index = fields.pop("orig_index", None)
    out = ParticleSet(**core, **fields)
    if orig_index is not None:
        out._fields["orig_index"] = np.asarray(orig_index, dtype=np.int64)
    return out
