"""Smoothed-particle hydrodynamics (paper §III-B), runnable.

Simulates an adiabatic gas: a dense clump embedded in a uniform background
expands under its own pressure.  Shows both neighbour engines: ParaTreeT's
single kNN traversal and the Gadget-2-style smoothing-length iteration, and
prints the traversal-work gap that drives Fig 11.

Run:  python examples/sph_simulation.py
"""

import numpy as np

from repro.apps.sph import SPHDriver, compute_density_knn, gadget_style_density
from repro.core import Configuration
from repro.particles import ParticleSet
from repro.trees import build_tree


def make_gas(n_clump: int = 2000, n_background: int = 6000, seed: int = 5) -> ParticleSet:
    rng = np.random.default_rng(seed)
    clump = rng.normal(0.0, 0.04, size=(n_clump, 3))
    background = rng.uniform(-0.5, 0.5, size=(n_background, 3))
    pos = np.vstack([clump, background])
    mass = np.full(len(pos), 1.0 / len(pos))
    return ParticleSet(pos, mass=mass)


class GasMain(SPHDriver):
    def configure(self, conf: Configuration) -> None:
        conf.num_iterations = 5
        conf.tree_type = "oct"
        conf.decomp_type = "sfc"
        conf.num_partitions = 16
        conf.num_subtrees = 16

    def create_particles(self, config: Configuration) -> ParticleSet:
        return make_gas()

    def post_traversal(self, iteration: int) -> None:
        super().post_traversal(iteration)
        rho = self.state.density
        print(
            f"  iter {iteration}: density max/median = "
            f"{rho.max() / np.median(rho):7.2f}, "
            f"kNN pp interactions = {self.state.stats.pp_interactions:,}"
        )


def main() -> None:
    print("SPH: dense clump in a uniform background (8k particles, k=32)")
    driver = GasMain(k_neighbors=32, internal_energy=1.0, dt=2e-4)
    driver.run()

    # The clump must be expanding: mean radial velocity of clump particles
    # (the first 2000 by original index) is positive.
    p = driver.particles
    orig = p.orig_index
    clump_mask = orig < 2000
    pos = p.position[clump_mask]
    vel = p.velocity[clump_mask]
    v_rad = np.einsum("ij,ij->i", vel, pos) / np.maximum(
        np.linalg.norm(pos, axis=1), 1e-12
    )
    print(f"\nclump mean radial velocity: {v_rad.mean():+.4f} (positive = expanding)")

    # The Fig 11 mechanism: compare neighbour-search work once, directly.
    print("\nneighbour-engine comparison on the final state:")
    tree = build_tree(p, tree_type="oct", bucket_size=16)
    knn = compute_density_knn(tree, k=32)
    gadget = gadget_style_density(tree, k=32, tol=2)
    ratio = gadget.stats.pp_interactions / max(knn.stats.pp_interactions, 1)
    print(f"  ParaTreeT kNN: 1 traversal, {knn.stats.pp_interactions:,} pp")
    print(f"  Gadget-style:  {gadget.n_rounds} ball rounds, "
          f"{gadget.stats.pp_interactions:,} pp  ({ratio:.2f}x the work)")
    agree = np.median(np.abs(gadget.density / knn.density - 1.0))
    print(f"  median density disagreement: {agree * 100:.1f}%")


if __name__ == "__main__":
    main()
