"""Cache model descriptors and fetch-statistics accounting."""

import numpy as np
import pytest

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.cache import (
    CACHE_MODELS,
    PER_THREAD,
    SEQUENTIAL,
    SINGLE_WRITER,
    WAITFREE,
    XWRITE,
    CacheModel,
    assign_fetch_groups,
    fetch_statistics,
)
from repro.core import InteractionLists, get_traverser
from repro.decomp import SfcDecomposer, decompose
from repro.particles import clustered_clumps
from repro.trees import build_tree


class TestCacheModelDescriptors:
    def test_registry(self):
        assert set(CACHE_MODELS) == {
            "WaitFree", "XWrite", "Sequential", "PerThread", "SingleWriter"
        }

    def test_waitfree_is_shared_parallel(self):
        assert WAITFREE.dedupe_scope == "process"
        assert WAITFREE.insert_policy == "parallel"

    def test_xwrite_locked(self):
        assert XWRITE.insert_policy == "locked"
        assert XWRITE.dedupe_scope == "process"

    def test_sequential_is_per_thread_cache(self):
        """Fig 3's 'Sequential' is the per-thread software cache."""
        assert SEQUENTIAL.dedupe_scope == "thread"
        assert PER_THREAD.dedupe_scope == "thread"
        assert SINGLE_WRITER.insert_policy == "single_thread"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(dedupe_scope="global", dedupe_time="request", insert_policy="parallel"),
            dict(dedupe_scope="process", dedupe_time="never", insert_policy="parallel"),
            dict(dedupe_scope="process", dedupe_time="request", insert_policy="magic"),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CacheModel("bad", **kwargs)


@pytest.fixture(scope="module")
def traversal_setup():
    p = clustered_clumps(3000, seed=23)
    tree = build_tree(p, tree_type="oct", bucket_size=16)
    parts = SfcDecomposer().assign(tree.particles, 32)
    dec = decompose(tree, parts, n_subtrees=32)
    lists = InteractionLists()
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.7))
    get_traverser("transposed").traverse(tree, visitor, None, lists)
    return tree, dec, lists


class TestFetchGroups:
    def test_every_deep_node_grouped(self, traversal_setup):
        tree, dec, _ = traversal_setup
        groups = assign_fetch_groups(tree, dec, nodes_per_request=3, shared_branch_levels=2)
        deep = (dec.node_subtree >= 0) & (tree.level >= 2)
        assert np.all(groups.group_of_node[deep] >= 0)
        shared = dec.node_subtree < 0
        assert np.all(groups.group_of_node[shared] == -1)

    def test_group_subtree_consistency(self, traversal_setup):
        tree, dec, _ = traversal_setup
        groups = assign_fetch_groups(tree, dec)
        for node in range(0, tree.n_nodes, 37):
            g = groups.group_of_node[node]
            if g >= 0:
                assert groups.group_subtree[g] == dec.node_subtree[node]

    def test_bytes_accounting(self, traversal_setup):
        tree, dec, _ = traversal_setup
        from repro.cache.stats import NODE_BYTES, PARTICLE_BYTES

        groups = assign_fetch_groups(tree, dec, shared_branch_levels=0)
        grouped = groups.group_of_node >= 0
        is_leaf = tree.first_child == -1
        expect = (
            NODE_BYTES * np.count_nonzero(grouped)
            + PARTICLE_BYTES
            * (tree.pend - tree.pstart)[grouped & is_leaf].sum()
        )
        assert groups.group_bytes.sum() == pytest.approx(expect)

    def test_finer_requests_make_more_groups(self, traversal_setup):
        tree, dec, _ = traversal_setup
        coarse = assign_fetch_groups(tree, dec, nodes_per_request=6)
        fine = assign_fetch_groups(tree, dec, nodes_per_request=1)
        assert fine.n_groups > coarse.n_groups


class TestFetchStatistics:
    def test_single_process_no_traffic(self, traversal_setup):
        tree, dec, lists = traversal_setup
        groups = assign_fetch_groups(tree, dec)
        st = fetch_statistics(tree, lists, dec, groups, 1, WAITFREE)
        assert st.total_requests == 0
        assert st.total_bytes == 0

    def test_traffic_grows_with_processes(self, traversal_setup):
        tree, dec, lists = traversal_setup
        groups = assign_fetch_groups(tree, dec)
        reqs = [
            fetch_statistics(tree, lists, dec, groups, p, WAITFREE).total_requests
            for p in (2, 8, 32)
        ]
        assert reqs[0] < reqs[1] < reqs[2]

    def test_thread_scope_duplicates(self, traversal_setup):
        """ChaNGa-style per-thread caches fetch the same segment multiple
        times per process (§III-A)."""
        tree, dec, lists = traversal_setup
        groups = assign_fetch_groups(tree, dec)
        wf = fetch_statistics(tree, lists, dec, groups, 8, WAITFREE, workers_per_process=8)
        pt = fetch_statistics(tree, lists, dec, groups, 8, PER_THREAD, workers_per_process=8)
        assert pt.total_requests > wf.total_requests
        assert pt.total_bytes > wf.total_bytes
        assert pt.duplication_factor > 1.0
        assert wf.duplication_factor == pytest.approx(1.0)

    def test_more_workers_more_duplication(self, traversal_setup):
        tree, dec, lists = traversal_setup
        groups = assign_fetch_groups(tree, dec)
        few = fetch_statistics(tree, lists, dec, groups, 4, PER_THREAD, workers_per_process=2)
        many = fetch_statistics(tree, lists, dec, groups, 4, PER_THREAD, workers_per_process=16)
        assert many.total_requests >= few.total_requests
