"""Fault injection, retry/timeout semantics, and graceful degradation.

The contract under test has three layers:

* the **plan/injector** layer is deterministic: one seed, one decision
  sequence, with zero-probability classes never touching their streams;
* the **DES runtime** recovers from injected faults — dropped or duplicated
  messages, transient fill failures, stragglers, crash-with-restart — and a
  run with an armed-but-silent injector is bit-identical to one with no
  injector at all;
* when recovery is impossible the runtime surfaces a structured
  :class:`IterationFailure` instead of hanging, and the Driver degrades
  gracefully (real physics results are never perturbed).
"""

import numpy as np
import pytest

from repro.bench.workloads import build_gravity_workload
from repro.cache.models import (
    PER_THREAD,
    RetryPolicy,
    SEQUENTIAL,
    SINGLE_WRITER,
    WAITFREE,
    XWRITE,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    IterationFailure,
    NO_FAULTS,
    as_injector,
    parse_fault_spec,
)
from repro.runtime import simulate_traversal
from repro.runtime.machine import SUMMIT


@pytest.fixture(scope="module")
def workload():
    return build_gravity_workload(
        n=2000, n_partitions=64, n_subtrees=64, seed=1
    ).workload


class TestFaultPlan:
    def test_default_plan_is_no_faults(self):
        assert not FaultPlan().any_faults
        assert not NO_FAULTS.any_faults
        assert FaultPlan(drop=0.1).any_faults

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError):
            FaultPlan(crash=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(jitter=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(straggler_slowdown=0.5)

    def test_parse_full_spec(self):
        plan = parse_fault_spec(
            "drop=0.05,dup=0.01,jitter=0.3,fail=0.1,straggler=0.25x8,"
            "crash=0.5@0.4,seed=42,retries=9,timeout=40,backoff=3"
        )
        assert plan.drop == 0.05
        assert plan.duplicate == 0.01
        assert plan.jitter == 0.3
        assert plan.fill_failure == 0.1
        assert plan.straggler_fraction == 0.25
        assert plan.straggler_slowdown == 8
        assert plan.crash == 0.5
        assert plan.crash_restart == 0.4
        assert plan.seed == 42
        assert plan.retry == RetryPolicy(max_attempts=9, timeout_factor=40, backoff=3)

    def test_describe_round_trips(self):
        plan = parse_fault_spec("drop=0.05,fail=0.1,straggler=0.2x4,crash=0.3,seed=7")
        assert parse_fault_spec(plan.describe()) == plan

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_fault_spec("drop=2")
        with pytest.raises(ValueError):
            parse_fault_spec("bogus=1")
        with pytest.raises(ValueError):
            parse_fault_spec("drop")
        with pytest.raises(ValueError):
            parse_fault_spec("drop=abc")

    def test_retry_policy_backoff(self):
        policy = RetryPolicy(max_attempts=4, timeout_factor=10.0, backoff=2.0)
        rtt = 1e-6
        windows = [policy.timeout_for(a, rtt) for a in range(3)]
        assert windows == pytest.approx([1e-5, 2e-5, 4e-5])
        assert windows[1] / windows[0] == windows[2] / windows[1] == 2.0


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=3, drop=0.3, duplicate=0.2, jitter=0.5, fill_failure=0.4)
        a, b = FaultInjector(plan), FaultInjector(plan)
        seq_a = [(a.drop_message(), a.duplicate_message(), a.jittered(1.0), a.fill_fails())
                 for _ in range(200)]
        seq_b = [(b.drop_message(), b.duplicate_message(), b.jittered(1.0), b.fill_fails())
                 for _ in range(200)]
        assert seq_a == seq_b
        assert a.counters.to_dict() == b.counters.to_dict()

    def test_zero_probability_streams_untouched(self):
        """Enabling one class must not perturb another: drops with and
        without an (unused) duplicate stream are identical."""
        only_drop = FaultInjector(FaultPlan(seed=5, drop=0.3))
        drop_and_dup = FaultInjector(FaultPlan(seed=5, drop=0.3, duplicate=0.0))
        seq = []
        for _ in range(100):
            drop_and_dup.duplicate_message()  # zero-probability: no stream use
            seq.append(drop_and_dup.drop_message())
        assert seq == [only_drop.drop_message() for _ in range(100)]

    def test_straggler_and_crash_draws(self):
        inj = FaultInjector(FaultPlan(seed=1, straggler_fraction=0.5,
                                      straggler_slowdown=6.0, crash=0.5,
                                      crash_restart=0.3))
        factors = inj.straggler_factors(32)
        assert set(factors) <= {1.0, 6.0}
        assert inj.counters.stragglers == factors.count(6.0) > 0
        events = inj.crash_events(32)
        assert events, "with p=0.5 over 32 processes some crash is expected"
        for ev in events:
            assert 0.05 <= ev.at_fraction <= 0.95
            assert ev.restart_fraction == 0.3

    def test_as_injector_coercions(self):
        assert as_injector(None) is None
        inj = as_injector(NO_FAULTS)
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj


class TestZeroPlanIdentity:
    """An armed injector that never fires must be invisible: same simulated
    time, same event count, same communication totals as no injector."""

    @pytest.mark.parametrize(
        "model", [WAITFREE, XWRITE, SEQUENTIAL, PER_THREAD, SINGLE_WRITER],
        ids=lambda m: m.name,
    )
    def test_bit_identical_to_baseline(self, workload, model):
        base = simulate_traversal(workload, SUMMIT, n_processes=8, cache_model=model)
        armed = simulate_traversal(workload, SUMMIT, n_processes=8,
                                   cache_model=model, faults=FaultPlan(seed=7))
        assert armed.time == base.time
        assert armed.events == base.events
        assert armed.requests == base.requests
        assert armed.duplicate_requests == base.duplicate_requests
        assert armed.bytes_moved == base.bytes_moved
        assert armed.faults is not None
        assert all(v == 0 for v in armed.faults.to_dict().values())

    def test_drop_zero_equals_baseline_with_other_faults_off(self, workload):
        """drop=0 with every other class off: the drop stream is never
        consulted, so results match the no-injector run exactly."""
        base = simulate_traversal(workload, SUMMIT, n_processes=8)
        r = simulate_traversal(workload, SUMMIT, n_processes=8,
                               faults=parse_fault_spec("drop=0,seed=9"))
        assert r.time == base.time and r.events == base.events


class TestFaultedRuns:
    def test_same_plan_bit_identical(self, workload):
        plan = parse_fault_spec("drop=0.05,dup=0.02,jitter=0.2,fail=0.1,seed=3")
        a = simulate_traversal(workload, SUMMIT, n_processes=8, faults=plan)
        b = simulate_traversal(workload, SUMMIT, n_processes=8, faults=plan)
        assert a.time == b.time
        assert a.events == b.events
        assert a.faults.to_dict() == b.faults.to_dict()
        assert a.faults.drops > 0 and a.faults.retries > 0

    def test_acceptance_plan_completes_with_default_retry(self, workload):
        """The headline robustness claim: 5% drops plus transient fill
        failures complete a full iteration with the default retry policy —
        recovery, not deadlock, not failure."""
        for seed in range(5):
            plan = parse_fault_spec(f"drop=0.05,fail=0.1,seed={seed}")
            r = simulate_traversal(workload, SUMMIT, n_processes=8, faults=plan)
            counters = r.faults.to_dict()
            assert counters["drops"] > 0
            assert counters["retries"] > 0
            assert counters["timeouts"] > 0

    def test_retry_exhaustion_raises_structured_failure(self, workload):
        plan = FaultPlan(seed=0, drop=0.95,
                         retry=RetryPolicy(max_attempts=2, timeout_factor=25.0))
        with pytest.raises(IterationFailure) as info:
            simulate_traversal(workload, SUMMIT, n_processes=8, faults=plan)
        exc = info.value
        assert exc.attempts == 2
        assert exc.process >= 0 and exc.group >= 0
        assert exc.sim_time > 0
        assert exc.counters.drops > 0
        d = exc.to_dict()
        assert d["reason"].startswith("retries exhausted")
        assert d["counters"]["drops"] == exc.counters.drops

    def test_straggler_slows_the_run(self, workload):
        base = simulate_traversal(workload, SUMMIT, n_processes=8)
        slow = simulate_traversal(
            workload, SUMMIT, n_processes=8,
            faults=FaultPlan(seed=2, straggler_fraction=0.5,
                             straggler_slowdown=8.0),
        )
        assert slow.faults.stragglers > 0
        assert slow.time > base.time

    def test_crash_restart_completes(self, workload):
        plan = parse_fault_spec("crash=0.5@0.25,seed=4")
        r = simulate_traversal(workload, SUMMIT, n_processes=8, faults=plan)
        assert r.faults.crash_restarts > 0

    def test_duplicates_are_harmless(self, workload):
        r = simulate_traversal(workload, SUMMIT, n_processes=8,
                               faults=parse_fault_spec("dup=0.3,seed=6"))
        assert r.faults.duplicates > 0
        base = simulate_traversal(workload, SUMMIT, n_processes=8)
        assert r.requests == base.requests  # dedupe still holds

    def test_fault_counters_in_sim_result_dict(self, workload):
        r = simulate_traversal(workload, SUMMIT, n_processes=8,
                               faults=parse_fault_spec("drop=0.05,seed=1"))
        d = r.to_dict()
        assert d["faults"]["drops"] == r.faults.drops

    def test_telemetry_gets_fault_counters_and_retry_spans(self, workload):
        from repro.obs import Telemetry

        tel = Telemetry()
        r = simulate_traversal(workload, SUMMIT, n_processes=8,
                               faults=parse_fault_spec("drop=0.05,fail=0.1,seed=0"),
                               telemetry=tel)
        assert tel.metrics.total("faults.drops") == r.faults.drops
        assert tel.metrics.total("faults.retries") == r.faults.retries
        retry_spans = tel.tracer.find("faults.retry")
        assert len(retry_spans) == r.faults.retries
        for s in retry_spans:
            assert s["dur"] >= 0


class TestDriverDegradation:
    def _run_driver(self, fault_plan=None, telemetry=None):
        from repro.apps.gravity import GravityDriver
        from repro.core import Configuration
        from repro.particles import clustered_clumps

        p = clustered_clumps(1200, seed=11)

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        cfg = Configuration(num_iterations=1, num_partitions=8, num_subtrees=8)
        driver = Main(cfg, theta=0.7)
        if telemetry is not None:
            driver.enable_telemetry(telemetry)
        if fault_plan is not None:
            driver.enable_faults(fault_plan)
        try:
            driver.run()
        finally:
            from repro.obs import set_telemetry
            set_telemetry(None)
        return driver

    def test_faults_do_not_perturb_physics(self):
        """ISSUE acceptance: a faulted gravity iteration completes and its
        accelerations are identical to the fault-free run — faults degrade
        the simulated schedule, never the real traversal."""
        clean = self._run_driver()
        faulted = self._run_driver("drop=0.05,fail=0.1,seed=3")
        np.testing.assert_array_equal(clean.accelerations, faulted.accelerations)
        report = faulted.reports[0]
        assert report.comm_sim is not None
        assert report.comm_sim["failed"] is False
        counters = report.comm_sim["faults"]
        assert counters["drops"] > 0 and counters["retries"] > 0
        assert clean.reports[0].comm_sim is None

    def test_driver_survives_retry_exhaustion(self):
        plan = FaultPlan(seed=0, drop=0.95,
                         retry=RetryPolicy(max_attempts=2))
        driver = self._run_driver(plan)
        report = driver.reports[0]
        assert report.comm_sim["failed"] is True
        assert report.comm_sim["reason"].startswith("retries exhausted")
        assert driver.accelerations is not None  # physics still delivered

    def test_driver_fault_metrics_flow_to_telemetry(self):
        from repro.obs import Telemetry

        tel = Telemetry()
        driver = self._run_driver("drop=0.05,fail=0.1,seed=3", telemetry=tel)
        counters = driver.reports[0].comm_sim["faults"]
        assert tel.metrics.total("faults.drops") == counters["drops"]

    def test_enable_faults_accepts_spec_string(self):
        driver = self._run_driver("drop=0,seed=1")
        assert driver.fault_plan is not None
        assert driver.reports[0].comm_sim is not None

    def test_report_to_dict_includes_comm_sim(self):
        driver = self._run_driver("drop=0.05,seed=2")
        d = driver.reports[0].to_dict()
        assert d["comm_sim"]["faults"]["drops"] >= 0


class TestCrashRecoverySemantics:
    """PR 4: crashes lose real state and recovery has a visible cost."""

    def _crash_run(self, workload, spec="crash=0.9@0.25,seed=4", telemetry=None):
        return simulate_traversal(workload, SUMMIT, n_processes=8,
                                  faults=parse_fault_spec(spec),
                                  telemetry=telemetry)

    def test_crash_loses_state_and_reports_recovery(self, workload):
        r = self._crash_run(workload)
        rec = r.recovery
        assert rec is not None
        assert rec.n_crashes == r.faults.crash_restarts > 0
        assert rec.lost_cache_lines > 0
        assert rec.lost_bytes > 0
        assert rec.recovery_time > 0
        for ev in rec.events:
            assert ev.buddy == (ev.process + 1) % 8
            assert ev.checkpoint_bytes > 0
        assert any(ev.recovered_at is not None for ev in rec.events)
        # Buddy fetches are real traffic on the simulated network.
        assert rec.bytes_refetched > 0

    def test_crash_recovery_in_result_dict(self, workload):
        d = self._crash_run(workload).to_dict()
        assert d["recovery"]["n_crashes"] > 0
        assert d["recovery"]["events"][0]["lost_cache_lines"] >= 0

    def test_same_seed_same_crash_bit_identical(self, workload):
        """ISSUE acceptance: same seed + same crash spec => bit-identical
        SimResult, recovery accounting included."""
        a = self._crash_run(workload)
        b = self._crash_run(workload)
        assert a.time == b.time
        assert a.events == b.events
        assert a.bytes_moved == b.bytes_moved
        assert a.faults.to_dict() == b.faults.to_dict()
        assert a.recovery.to_dict() == b.recovery.to_dict()

    def test_distinct_crash_seeds_distinct_crash_times(self, workload):
        """ISSUE acceptance: two crash-fault streams seeded differently
        crash at different simulated times."""
        a = self._crash_run(workload, "crash=0.9@0.25,seed=4")
        b = self._crash_run(workload, "crash=0.9@0.25,seed=5")
        times_a = [ev.crashed_at for ev in a.recovery.events]
        times_b = [ev.crashed_at for ev in b.recovery.events]
        assert times_a != times_b

    def test_crash_costs_simulated_time(self, workload):
        base = simulate_traversal(workload, SUMMIT, n_processes=8)
        crashed = self._crash_run(workload)
        assert crashed.time > base.time

    def test_no_crash_no_recovery_report(self, workload):
        r = simulate_traversal(workload, SUMMIT, n_processes=8,
                               faults=parse_fault_spec("drop=0.05,seed=1"))
        assert r.recovery is None
        assert "recovery" not in r.to_dict()

    def test_recovery_flows_to_telemetry(self, workload):
        from repro.obs import Telemetry

        tel = Telemetry()
        r = self._crash_run(workload, telemetry=tel)
        rec = r.recovery
        assert tel.metrics.total("recovery.crashes") == rec.n_crashes
        assert tel.metrics.total("recovery.lost_bytes") == rec.lost_bytes
        assert tel.metrics.total("recovery.bytes_refetched") == rec.bytes_refetched
        restart_spans = [e for e in tel.tracer.events
                         if e.get("cat") == "recovery"
                         and e["name"].startswith("restart")]
        fetch_spans = [e for e in tel.tracer.events
                       if e.get("cat") == "recovery"
                       and e["name"].startswith("checkpoint fetch")]
        assert len(restart_spans) == rec.n_crashes
        assert fetch_spans, "buddy fetch should occupy the recovery lane"
        from repro.obs import chrome_trace

        doc = chrome_trace(tel)
        lane_names = [e["args"]["name"] for e in doc["traceEvents"]
                      if e.get("ph") == "M"]
        assert "⟲ recovery" in lane_names

    def test_single_process_reloads_locally(self, workload):
        r = simulate_traversal(workload, SUMMIT, n_processes=1,
                               faults=parse_fault_spec("crash=0.9@0.25,seed=4"))
        rec = r.recovery
        assert rec is not None and rec.n_crashes > 0
        assert all(ev.buddy is None for ev in rec.events)
        assert rec.bytes_refetched == 0.0
