"""Traversal engines: cross-engine equivalence, stats, recorders, and the
scalar-visitor fallback path."""

import numpy as np
import pytest

from repro.apps.gravity import (
    GravityVisitor,
    compute_centroid_arrays,
    compute_gravity,
    direct_accelerations,
)
from repro.core import (
    InteractionLists,
    TraversalStats,
    Visitor,
    get_traverser,
    register_traverser,
)
from repro.core.traverser import BucketLoadRecorder, Traverser
from repro.particles import plummer_sphere, uniform_cube
from repro.trees import build_tree


@pytest.fixture(scope="module")
def particles():
    return plummer_sphere(800, seed=2)


@pytest.fixture(scope="module")
def tree(particles):
    return build_tree(particles, tree_type="oct", bucket_size=12)


class TestEngineEquivalence:
    def test_same_interaction_counts(self, tree):
        """Both top-down engines evaluate exactly the same interaction set."""
        stats = {}
        for name in ("transposed", "per-bucket"):
            arrays = compute_centroid_arrays(tree, theta=0.6)
            visitor = GravityVisitor(tree, arrays)
            stats[name] = get_traverser(name).traverse(tree, visitor)
        a, b = stats["transposed"], stats["per-bucket"]
        assert a.opens == b.opens
        assert a.node_interactions == b.node_interactions
        assert a.leaf_interactions == b.leaf_interactions
        assert a.pp_interactions == b.pp_interactions
        assert a.pn_interactions == b.pn_interactions
        # ...but the transposed engine touches each node only once
        assert a.nodes_visited < b.nodes_visited

    def test_same_accelerations(self, particles):
        res_t = compute_gravity(particles, theta=0.6, traverser="transposed")
        res_b = compute_gravity(particles, theta=0.6, traverser="per-bucket")
        assert np.allclose(res_t.accel, res_b.accel, rtol=1e-9, atol=1e-12)

    def test_basic_alias(self, particles):
        res = compute_gravity(particles, theta=0.6, traverser="basic")
        res_b = compute_gravity(particles, theta=0.6, traverser="per-bucket")
        assert np.allclose(res.accel, res_b.accel)

    def test_matches_direct_sum(self, particles):
        res = compute_gravity(particles, theta=0.4, softening=1e-3)
        exact = direct_accelerations(particles, softening=1e-3)
        rel = np.linalg.norm(res.accel - exact, axis=1) / np.linalg.norm(exact, axis=1)
        assert np.median(rel) < 5e-3
        assert rel.mean() < 1e-2

    def test_accuracy_improves_with_theta(self, particles):
        exact = direct_accelerations(particles, softening=1e-3)

        def err(theta):
            res = compute_gravity(particles, theta=theta, softening=1e-3)
            return np.mean(
                np.linalg.norm(res.accel - exact, axis=1) / np.linalg.norm(exact, axis=1)
            )

        assert err(0.3) < err(0.9)

    def test_quadrupole_more_accurate(self, particles):
        exact = direct_accelerations(particles, softening=1e-3)
        mono = compute_gravity(particles, theta=0.7, softening=1e-3)
        quad = compute_gravity(particles, theta=0.7, softening=1e-3, with_quadrupole=True)

        def err(res):
            return np.mean(
                np.linalg.norm(res.accel - exact, axis=1) / np.linalg.norm(exact, axis=1)
            )

        assert err(quad) < 0.5 * err(mono)


class TestTargetSubsets:
    def test_partial_targets(self, tree):
        """Traversing half the buckets computes exactly those buckets."""
        arrays = compute_centroid_arrays(tree, theta=0.6)
        leaves = tree.leaf_indices
        half = leaves[: len(leaves) // 2]
        visitor = GravityVisitor(tree, arrays)
        get_traverser("transposed").traverse(tree, visitor, half)
        full_visitor = GravityVisitor(tree, arrays)
        get_traverser("transposed").traverse(tree, full_visitor)
        for leaf in half:
            s, e = tree.pstart[leaf], tree.pend[leaf]
            assert np.allclose(visitor.accel[s:e], full_visitor.accel[s:e])
        untouched = leaves[len(leaves) // 2 :]
        for leaf in untouched[:5]:
            s, e = tree.pstart[leaf], tree.pend[leaf]
            assert np.all(visitor.accel[s:e] == 0.0)

    def test_non_leaf_target_rejected(self, tree):
        visitor = GravityVisitor(tree, compute_centroid_arrays(tree))
        with pytest.raises(ValueError):
            get_traverser("transposed").traverse(tree, visitor, np.array([0]))

    def test_empty_targets(self, tree):
        visitor = GravityVisitor(tree, compute_centroid_arrays(tree))
        stats = get_traverser("transposed").traverse(
            tree, visitor, np.empty(0, dtype=np.int64)
        )
        assert stats.opens == 0


class TestScalarFallback:
    def test_scalar_visitor_works_on_all_engines(self):
        """A paper-style visitor with only open/node/leaf runs unchanged."""
        particles = uniform_cube(150, seed=3)
        tree = build_tree(particles, tree_type="kd", bucket_size=6)
        arrays = compute_centroid_arrays(tree, theta=0.6)

        class ScalarGravity(Visitor):
            def __init__(self):
                self.accel = np.zeros((tree.n_particles, 3))

            def open(self, source, target):
                c = arrays.centroid[source.index]
                rsq = arrays.open_radius_sq[source.index]
                return bool(target.box.intersects_sphere(c, np.sqrt(rsq)))

            def node(self, source, target):
                from repro.apps.gravity import point_mass_accel

                idx = np.arange(tree.pstart[target.index], tree.pend[target.index])
                self.accel[idx] += point_mass_accel(
                    tree.particles.position[idx],
                    arrays.centroid[source.index],
                    float(arrays.mass[source.index]),
                )

            def leaf(self, source, target):
                from repro.apps.gravity import pairwise_accel

                idx = np.arange(tree.pstart[target.index], tree.pend[target.index])
                s, e = tree.pstart[source.index], tree.pend[source.index]
                self.accel[idx] += pairwise_accel(
                    tree.particles.position[idx],
                    tree.particles.position[s:e],
                    tree.particles.mass[s:e],
                )

        results = {}
        for engine in ("transposed", "per-bucket"):
            v = ScalarGravity()
            get_traverser(engine).traverse(tree, v)
            results[engine] = v.accel
        assert np.allclose(results["transposed"], results["per-bucket"], rtol=1e-9)
        # and matches the fully-batched visitor
        fast = GravityVisitor(tree, arrays)
        get_traverser("transposed").traverse(tree, fast)
        assert np.allclose(results["transposed"], fast.accel, rtol=1e-9)


class TestRecorders:
    def test_interaction_lists_complete(self, tree):
        arrays = compute_centroid_arrays(tree, theta=0.6)
        visitor = GravityVisitor(tree, arrays)
        lists = InteractionLists()
        stats = get_traverser("transposed").traverse(tree, visitor, None, lists)
        n_node = sum(len(v) for v in lists.node_lists.values())
        n_leaf = sum(len(v) for v in lists.leaf_lists.values())
        n_open = sum(len(v) for v in lists.visited.values())
        assert n_node == stats.node_interactions
        assert n_leaf == stats.leaf_interactions
        assert n_open == stats.opens
        assert set(lists.visited) <= set(tree.leaf_indices.tolist())

    def test_lists_identical_across_engines(self, tree):
        arrays = compute_centroid_arrays(tree, theta=0.6)
        per_engine = {}
        for engine in ("transposed", "per-bucket"):
            lists = InteractionLists()
            get_traverser(engine).traverse(tree, GravityVisitor(tree, arrays), None, lists)
            per_engine[engine] = lists
        a, b = per_engine["transposed"], per_engine["per-bucket"]
        for t in a.node_lists:
            assert sorted(a.node_lists[t]) == sorted(b.node_lists.get(t, []))
        for t in a.leaf_lists:
            assert sorted(a.leaf_lists[t]) == sorted(b.leaf_lists.get(t, []))

    def test_bucket_load_recorder(self, tree):
        arrays = compute_centroid_arrays(tree, theta=0.6)
        rec = BucketLoadRecorder(tree)
        stats = get_traverser("transposed").traverse(
            tree, GravityVisitor(tree, arrays), None, rec
        )
        assert rec.work.sum() > 0
        per_particle = rec.per_particle_load(tree)
        assert per_particle.shape == (tree.n_particles,)
        assert per_particle.sum() == pytest.approx(rec.work.sum())
        # total recorded work equals the stats' interaction totals
        assert rec.work.sum() == pytest.approx(
            stats.pp_interactions + stats.pn_interactions
        )


class TestStatsAndRegistry:
    def test_stats_merge(self):
        a = TraversalStats(opens=1, pp_interactions=10, targets=2)
        b = TraversalStats(opens=2, node_interactions=5)
        a.merge(b)
        assert a.opens == 3 and a.node_interactions == 5 and a.targets == 2
        assert a.as_dict()["pp_interactions"] == 10

    def test_unknown_traverser(self):
        with pytest.raises(ValueError, match="unknown traverser"):
            get_traverser("spiral")

    def test_register_custom(self):
        class Nop(Traverser):
            name = "nop"

            def traverse(self, tree, visitor, targets=None, recorder=None):
                return TraversalStats()

        register_traverser("nop", Nop)
        assert isinstance(get_traverser("nop"), Nop)
