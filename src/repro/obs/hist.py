"""Mergeable log₂-bucketed latency histograms with quantile estimation.

A :class:`Log2Histogram` buckets positive samples by their binary exponent:
bucket ``i`` covers ``(2**(min_exp + i - 1), 2**(min_exp + i)]`` seconds,
with one underflow bucket below ``2**min_exp`` and one overflow bucket
above ``2**max_exp``.  The default range covers ~1 µs to ~1 h, which is
every latency this codebase produces, in 44 integer counters.

Two properties make it the right shape for the parallel backends:

* **merge is exact and deterministic** — bucket counts are integers, so
  ``a.merge(b)`` loses nothing, and merging worker histograms in chunk
  order at the reduction point gives the same result for any worker count;
* **quantile() is bounded** — the estimate is the geometric midpoint of the
  bucket holding the requested rank, so it is always within one log₂
  bucket (a factor of √2̄ each way) of the exact order statistic.

Workers record on their own clocks into a *fork* of the parent histogram
(the same fork/absorb protocol :class:`~repro.core.traverser.Recorder`
uses) and the backend absorbs the forks in chunk order — which is how the
process backend reports true worker-side timings instead of parent-side
reconstructions.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

import numpy as np

__all__ = ["Log2Histogram", "QUANTILES", "quantile_label"]

#: the quantiles every snapshot reports
QUANTILES = (0.5, 0.95, 0.99, 0.999)


def quantile_label(q: float) -> str:
    """``0.999`` -> ``"p99.9"``, ``0.5`` -> ``"p50"``."""
    pct = q * 100.0
    if abs(pct - round(pct)) < 1e-9:
        return f"p{int(round(pct))}"
    return f"p{pct:g}"


class Log2Histogram:
    """Log₂-bucketed histogram of positive values (seconds by convention)."""

    __slots__ = ("min_exp", "max_exp", "counts", "count", "sum", "min", "max")

    def __init__(self, min_exp: int = -20, max_exp: int = 12) -> None:
        if max_exp <= min_exp:
            raise ValueError("max_exp must be > min_exp")
        self.min_exp = int(min_exp)
        self.max_exp = int(max_exp)
        # underflow | one bucket per exponent in (min_exp, max_exp] | overflow
        self.counts = [0] * (self.max_exp - self.min_exp + 2)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    # -- recording ----------------------------------------------------------
    def _bucket(self, value: float) -> int:
        if value <= 0.0 or not math.isfinite(value):
            return 0
        m, e = math.frexp(value)  # value = m * 2**e with 0.5 <= m < 1
        exp = e - 1 if m == 0.5 else e  # ceil(log2(value))
        return min(max(exp - self.min_exp, 0), len(self.counts) - 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.counts[self._bucket(value)] += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Vectorised :meth:`observe` for an array of samples."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                        dtype=np.float64)
        if arr.size == 0:
            return
        self.count += int(arr.size)
        self.sum += float(arr.sum())
        self.min = min(self.min, float(arr.min()))
        self.max = max(self.max, float(arr.max()))
        pos = arr[np.isfinite(arr) & (arr > 0)]
        n_nonpos = arr.size - pos.size
        if n_nonpos:
            self.counts[0] += int(n_nonpos)
        if pos.size:
            m, e = np.frexp(pos)
            exp = np.where(m == 0.5, e - 1, e)
            idx = np.clip(exp - self.min_exp, 0, len(self.counts) - 1)
            binned = np.bincount(idx, minlength=len(self.counts))
            for i, c in enumerate(binned):
                if c:
                    self.counts[i] += int(c)

    # -- merge (the fork/absorb protocol) -----------------------------------
    def fork(self) -> "Log2Histogram":
        """An empty histogram with the same bucket layout, for one worker."""
        return Log2Histogram(self.min_exp, self.max_exp)

    def merge(self, other: "Log2Histogram") -> "Log2Histogram":
        """Fold ``other`` in; exact on counts, associative and commutative."""
        if (other.min_exp, other.max_exp) != (self.min_exp, self.max_exp):
            raise ValueError(
                f"incompatible bucket layouts: [{self.min_exp},{self.max_exp}]"
                f" vs [{other.min_exp},{other.max_exp}]"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    absorb = merge  # Recorder-protocol alias used by the exec backends

    # -- quantiles ----------------------------------------------------------
    def _bounds(self, bucket: int) -> tuple[float, float]:
        if bucket == 0:
            return (0.0, 2.0 ** self.min_exp)
        hi_exp = self.min_exp + bucket
        if bucket == len(self.counts) - 1:
            return (2.0 ** self.max_exp, math.inf)
        return (2.0 ** (hi_exp - 1), 2.0 ** hi_exp)

    def quantile(self, q: float) -> float:
        """Order-statistic estimate: the geometric midpoint of the bucket
        holding rank ``ceil(q * count)`` — within one log₂ bucket of the
        exact sorted-sample value, clamped to the observed [min, max].

        An empty histogram has no order statistics: returns ``nan`` (never
        raises), which renderers surface as ``n=0`` rather than a fake 0.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        bucket = len(self.counts) - 1
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank:
                bucket = i
                break
        lo, hi = self._bounds(bucket)
        if not math.isfinite(hi):
            est = self.max
        elif lo == 0.0:
            est = hi / 2.0
        else:
            est = math.sqrt(lo * hi)
        return min(max(est, self.min), self.max)

    def quantiles(self, qs: Iterable[float] = QUANTILES) -> dict[str, float]:
        return {quantile_label(q): self.quantile(q) for q in qs}

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    # -- (de)serialisation --------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "min_exp": self.min_exp,
            "max_exp": self.max_exp,
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "quantiles": self.quantiles() if self.count else {},
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Log2Histogram":
        out = cls(doc["min_exp"], doc["max_exp"])
        counts = [int(c) for c in doc["counts"]]
        if len(counts) != len(out.counts):
            raise ValueError("bucket count mismatch")
        out.counts = counts
        out.count = int(doc["count"])
        out.sum = float(doc["sum"])
        out.min = float(doc["min"]) if doc.get("min") is not None else math.inf
        out.max = float(doc["max"]) if doc.get("max") is not None else -math.inf
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Log2Histogram(count={self.count}, mean={self.mean:.3g}, "
                f"p99={self.quantile(0.99):.3g})" if self.count
                else "Log2Histogram(empty)")
