"""The application Driver (paper §II-D, Fig 8).

Users subclass :class:`Driver`, override ``configure`` /
``create_particles`` / ``prepare`` / ``traversal`` / ``post_traversal``, and
call :meth:`Driver.run`.  Per iteration the library performs the full
pipeline the paper describes:

1. find Partition splitters via the configured decomposition type and mark
   particles;
2. build the tree (Subtrees are decomposed consistently with it);
3. the leaf-sharing step reconciles the two views (Partitions–Subtrees);
4. user ``prepare`` extracts Data (leaves → root);
5. user ``traversal`` starts visitors through the :class:`Partitions`
   facade (``start_down`` etc.);
6. user ``post_traversal`` does non-traversal physics (collisions, SPH
   updates, integration);
7. optional measured-load re-balancing every ``lb_period`` iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..particles import ParticleSet, load_particles
from ..trees import Tree, build_tree
from ..decomp import Decomposition, decompose, get_decomposer
from ..decomp.loadbalance import sfc_rebalance, spatial_bisection_rebalance
from .config import Configuration
from .traverser import (
    BucketLoadRecorder,
    Recorder,
    TraversalStats,
    get_traverser,
)
from .visitor import Visitor

__all__ = ["Driver", "Partitions", "IterationReport"]


class Partitions:
    """Facade over the partition set: launches traversals for the buckets
    the partitions own (``partitions().startDown<Visitor>()`` in Fig 8)."""

    def __init__(self, driver: "Driver") -> None:
        self._driver = driver

    @property
    def decomposition(self) -> Decomposition:
        return self._driver.decomposition

    def _targets(self) -> np.ndarray:
        return self._driver.tree.leaf_indices

    def _run(self, traverser_name: str, visitor: Visitor) -> TraversalStats:
        driver = self._driver
        engine = get_traverser(traverser_name)
        recorders = [r for r in (driver._load_recorder, driver._extra_recorder) if r]
        recorder = _MultiRecorder(recorders) if recorders else None
        stats = engine.traverse(driver.tree, visitor, self._targets(), recorder)
        driver.last_stats.merge(stats)
        return stats

    def start_down(self, visitor: Visitor) -> TraversalStats:
        """Top-down traversal with the configured engine (paper: startDown)."""
        return self._run(self._driver.config.traverser, visitor)

    def start_basic_down(self, visitor: Visitor) -> TraversalStats:
        """Force the classic per-bucket DFS ("BasicTrav")."""
        return self._run("per-bucket", visitor)

    def start_up_and_down(self, visitor: Visitor) -> TraversalStats:
        return self._run("up-and-down", visitor)

    def start_dual(self, visitor: Visitor) -> TraversalStats:
        engine = get_traverser("dual-tree")
        stats = engine.traverse(self._driver.tree, visitor, None, None)
        self._driver.last_stats.merge(stats)
        return stats


class _MultiRecorder(Recorder):
    def __init__(self, recorders: list[Recorder]) -> None:
        self.recorders = recorders

    def on_open(self, tree, sources, targets):
        for r in self.recorders:
            r.on_open(tree, sources, targets)

    def on_node(self, tree, sources, targets):
        for r in self.recorders:
            r.on_node(tree, sources, targets)

    def on_leaf(self, tree, sources, targets):
        for r in self.recorders:
            r.on_leaf(tree, sources, targets)


@dataclass
class IterationReport:
    """What one iteration did; collected in ``Driver.reports``."""

    iteration: int
    stats: TraversalStats
    partition_loads: np.ndarray
    imbalance: float
    n_split_buckets: int
    n_shared_particles: int
    rebalanced: bool = False
    user: dict[str, Any] = field(default_factory=dict)


class Driver:
    """Base class for ParaTreeT applications."""

    def __init__(self, config: Configuration | None = None) -> None:
        self.config = config or Configuration()
        self.particles: ParticleSet | None = None
        self.tree: Tree | None = None
        self.decomposition: Decomposition | None = None
        self.last_stats = TraversalStats()
        self.reports: list[IterationReport] = []
        self._partitions = Partitions(self)
        self._load_recorder: BucketLoadRecorder | None = None
        self._extra_recorder: Recorder | None = None
        self._pending_assignment: np.ndarray | None = None

    # -- user hooks ---------------------------------------------------------
    def configure(self, config: Configuration) -> None:
        """Mutate ``config`` before the run starts (paper Fig 8)."""

    def create_particles(self, config: Configuration) -> ParticleSet:
        """Provide the particle set when no input file is configured."""
        raise NotImplementedError(
            "set config.input_file or override create_particles()"
        )

    def prepare(self, tree: Tree) -> None:
        """Extract per-node Data after the tree build (leaves -> root)."""

    def traversal(self, iteration: int) -> None:
        """Start visitors via ``self.partitions()``."""
        raise NotImplementedError

    def post_traversal(self, iteration: int) -> None:
        """Non-traversal work: integration, collisions, output, ..."""

    # -- library ------------------------------------------------------------
    def partitions(self) -> Partitions:
        return self._partitions

    def set_recorder(self, recorder: Recorder | None) -> None:
        """Attach an observer to every traversal (profiling, memsim)."""
        self._extra_recorder = recorder

    def run(self) -> list[IterationReport]:
        self.configure(self.config)
        cfg = self.config
        if self.particles is None:
            if cfg.input_file:
                self.particles = load_particles(cfg.input_file)
            else:
                self.particles = self.create_particles(cfg)
        for it in range(cfg.num_iterations):
            self.run_iteration(it)
        return self.reports

    def run_iteration(self, iteration: int) -> IterationReport:
        """One full decompose/build/traverse/post cycle."""
        cfg = self.config
        assert self.particles is not None

        # 1. Partition splitters + particle marking.  A flush (paper
        # §II-D-1: "ParaTreeT rebuilds and reassigns partitions during a
        # 'flush' step if load ever becomes irreparably imbalanced")
        # discards any carried-over assignment and re-decomposes from
        # scratch — periodically via ``flush_period`` and reactively when
        # the previous iteration's imbalance exceeded the threshold in
        # ``config.extra["flush_imbalance"]``.
        flush = cfg.flush_period > 0 and iteration > 0 and iteration % cfg.flush_period == 0
        threshold = cfg.extra.get("flush_imbalance")
        if threshold is not None and self.reports:
            flush = flush or self.reports[-1].imbalance > float(threshold)
        if flush:
            self._pending_assignment = None
        if self._pending_assignment is not None:
            part_ids = self._pending_assignment
            self._pending_assignment = None
            rebalanced = True
        else:
            decomposer = get_decomposer(cfg.decomp_type)
            part_ids = decomposer.assign(self.particles, cfg.num_partitions)
            rebalanced = False

        # 2. Tree build (particles get permuted into tree order).  part_ids
        # are indexed by the pre-build ordering; recover the build's
        # permutation from orig_index — unique labels, but not necessarily
        # contiguous (merging/removal keeps original labels).
        prev_labels = self.particles.orig_index
        sorter = np.argsort(prev_labels)
        self.tree = build_tree(self.particles, cfg.tree_build_config())
        self.particles = self.tree.particles
        build_order = sorter[
            np.searchsorted(prev_labels, self.particles.orig_index, sorter=sorter)
        ]  # tree position -> pre-build position
        tree_order_parts = part_ids[build_order]

        # 3. Partitions-Subtrees decomposition + leaf sharing.
        self.decomposition = decompose(
            self.tree, tree_order_parts, cfg.num_subtrees, n_processes=cfg.num_partitions
        )

        # 4. Data extraction.
        self.prepare(self.tree)

        # 5. Traversal.
        self.last_stats = TraversalStats()
        want_lb = cfg.lb_period > 0 and (iteration + 1) % cfg.lb_period == 0
        self._load_recorder = BucketLoadRecorder(self.tree) if want_lb else None
        self.traversal(iteration)

        # 6. Post-traversal physics.
        self.post_traversal(iteration)

        # 7. Measured-load re-balancing.
        loads = self.decomposition.partition_loads()
        if want_lb and self._load_recorder is not None:
            per_particle = self._load_recorder.per_particle_load(self.tree)
            if cfg.lb_strategy == "sfc":
                new_parts = sfc_rebalance(self.particles, per_particle, cfg.num_partitions)
            else:
                new_parts = spatial_bisection_rebalance(
                    self.particles, per_particle, cfg.num_partitions
                )
            self._pending_assignment = new_parts
        self._load_recorder = None

        report = IterationReport(
            iteration=iteration,
            stats=self.last_stats,
            partition_loads=loads,
            imbalance=float(loads.max() / loads.mean()) if loads.sum() else 1.0,
            n_split_buckets=self.decomposition.n_split_buckets,
            n_shared_particles=self.decomposition.n_shared_particles,
            rebalanced=rebalanced,
        )
        self.reports.append(report)
        return report
