"""CI client for the serve-smoke job.

Usage::

    python .github/scripts/serve_probe.py burst <socket>
    python .github/scripts/serve_probe.py probe <socket> <answers.json>

``burst`` fires one synchronous wave of queries at a rate-limited server
and asserts the shed policy engaged: some queries shed, every shed reply
carries a ``retry_after`` hint, and some queries were still answered.

``probe`` sends a small deterministic query set paced under the admission
rate (retrying sheds after their hint) and writes the ``ok`` results to a
JSON file — two probe files from a server and its ``--resume`` restart
must compare equal, which is the byte-identical-restart check.
"""

import asyncio
import json
import sys

import numpy as np

from repro.serve import socket_query

N_BURST = 300
N_PROBE = 20


def _points(n, seed=123):
    return np.random.default_rng(seed).uniform(0.05, 0.95, (n, 3))


def burst(where):
    wire = [{"id": f"b{i:04d}", "op": "knn", "point": list(p), "k": 8}
            for i, p in enumerate(_points(N_BURST))]
    docs = asyncio.run(socket_query(where, wire, timeout=120))
    by = {}
    for d in docs:
        by[d["status"]] = by.get(d["status"], 0) + 1
    shed = [d for d in docs if d["status"] == "shed"]
    assert shed, f"{N_BURST} simultaneous queries must trip shedding: {by}"
    missing = [d for d in shed if d.get("retry_after") is None]
    assert not missing, f"{len(missing)} shed replies lack retry_after"
    assert by.get("ok", 0) > 0, f"no queries served at all: {by}"
    print(f"burst: {by} — all {len(shed)} sheds carry retry_after")


async def _probe(where):
    answers = {}
    for i, p in enumerate(_points(N_PROBE, seed=7)):
        q = {"id": f"p{i:03d}", "op": "knn", "point": list(p), "k": 6}
        for _ in range(50):
            doc = (await socket_query(where, [q], timeout=60))[0]
            if doc["status"] == "ok":
                answers[q["id"]] = doc["result"]
                break
            assert doc["status"] == "shed", doc
            await asyncio.sleep(doc.get("retry_after") or 0.05)
        else:
            raise AssertionError(f"probe {q['id']} never admitted")
        await asyncio.sleep(0.02)   # stay under the admission rate
    return answers


def probe(where, out):
    answers = asyncio.run(_probe(where))
    assert len(answers) == N_PROBE
    with open(out, "w") as fh:
        json.dump(answers, fh, sort_keys=True, indent=1)
    print(f"probe: wrote {len(answers)} answers to {out}")


def main():
    cmd, sock = sys.argv[1], sys.argv[2]
    where = sock if ":" in sock else f"unix:{sock}"
    if cmd == "burst":
        burst(where)
    elif cmd == "probe":
        probe(where, sys.argv[3])
    else:
        raise SystemExit(f"unknown command {cmd!r}")


if __name__ == "__main__":
    main()
