"""Observability v2: flight recorder, mergeable latency histograms,
trace-context propagation, SLOs, and the live dashboard.

The physics-facing invariant — telemetry on/off never changes results —
is pinned in ``test_obs.py``; this file covers the new layer on top:

* ``Log2Histogram`` algebra (hypothesis): merge is exact and order-free,
  quantile estimates stay within one log2 bucket of the exact order
  statistic;
* worker-clock task spans nest under their owning phase span for the
  thread AND process backends (satellite: no more ``start = now - dur``);
* the exec worker-tree cache hit rate surfaces in counters and reports;
* SLO burn-rate evaluation over real runs and DES straggler traffic;
* validators, dashboard rendering, status files, and the CLI surface.
"""

from __future__ import annotations

import functools
import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.apps.gravity import GravityDriver
from repro.core import Configuration
from repro.obs import (
    NULL_FLIGHT,
    STATUS_SCHEMA,
    Dashboard,
    FlightRecorder,
    Log2Histogram,
    StatusWriter,
    Telemetry,
    chrome_trace,
    evaluate_slo,
    follow_status_file,
    format_flight_dump,
    load_flight_dump,
    parse_slo_spec,
    quantile_label,
    read_status_file,
    samples_from_reports,
    samples_from_sim,
    use_telemetry,
    validate_chrome_trace,
    validate_flight_dump,
    validate_slo_report,
)
from repro.particles import clustered_clumps

# Stay inside the histogram's bucketed range [2^-20, 2^12] so the
# within-one-bucket quantile property is exact (the under/overflow
# buckets only promise clamping to the observed min/max).
positive_floats = st.floats(min_value=1e-6, max_value=4000.0,
                            allow_nan=False, allow_infinity=False)
sample_lists = st.lists(positive_floats, min_size=1, max_size=200)


def _hist(values) -> Log2Histogram:
    h = Log2Histogram()
    for v in values:
        h.observe(v)
    return h


# ---------------------------------------------------------------------------
# Log2Histogram algebra
# ---------------------------------------------------------------------------

class TestLog2Histogram:
    @given(sample_lists, sample_lists)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_single_pass(self, a, b):
        merged = _hist(a)
        merged.merge(_hist(b))
        direct = _hist(a + b)
        assert np.array_equal(merged.counts, direct.counts)
        assert merged.count == direct.count == len(a) + len(b)
        assert merged.sum == pytest.approx(direct.sum)
        assert merged.min == direct.min and merged.max == direct.max

    @given(sample_lists, sample_lists, sample_lists)
    @settings(max_examples=40, deadline=None)
    def test_merge_commutative_and_associative(self, a, b, c):
        ab_c = _hist(a)
        ab_c.merge(_hist(b))
        ab_c.merge(_hist(c))
        c_ba = _hist(c)
        ba = _hist(b)
        ba.merge(_hist(a))
        c_ba.merge(ba)
        assert np.array_equal(ab_c.counts, c_ba.counts)
        assert ab_c.count == c_ba.count
        assert ab_c.sum == pytest.approx(c_ba.sum)

    @given(sample_lists, st.sampled_from([0.5, 0.9, 0.95, 0.99]))
    @settings(max_examples=60, deadline=None)
    def test_quantile_within_one_bucket(self, values, q):
        """The estimate lands in the same log2 bucket as the exact order
        statistic, so it is within a factor of 2 either way."""
        h = _hist(values)
        exact = sorted(values)[max(0, math.ceil(q * len(values)) - 1)]
        est = h.quantile(q)
        assert exact / 2.01 <= est <= exact * 2.01

    @given(sample_lists)
    @settings(max_examples=40, deadline=None)
    def test_quantile_clamped_to_observed_range(self, values):
        h = _hist(values)
        for q in (0.001, 0.5, 0.999, 1.0):
            assert min(values) <= h.quantile(q) <= max(values)
        with pytest.raises(ValueError):
            h.quantile(0.0)

    def test_observe_many_matches_loop(self, rng):
        values = rng.lognormal(mean=-7.0, sigma=2.0, size=2000)
        vec = Log2Histogram()
        vec.observe_many(values)
        loop = _hist(values)
        assert np.array_equal(vec.counts, loop.counts)
        assert vec.count == loop.count
        assert vec.sum == pytest.approx(loop.sum)

    def test_fork_absorb_protocol(self):
        parent = _hist([1.0, 2.0])
        child = parent.fork()
        assert child.count == 0
        child.observe(4.0)
        parent.absorb(child)
        assert parent.count == 3
        assert parent.sum == pytest.approx(7.0)

    def test_dict_roundtrip_and_labels(self):
        h = _hist([0.001, 0.01, 0.1])
        d = h.to_dict()
        back = Log2Histogram.from_dict(d)
        assert np.array_equal(back.counts, h.counts)
        assert back.quantile(0.5) == h.quantile(0.5)
        assert quantile_label(0.999) == "p99.9"
        assert quantile_label(0.5) == "p50"

    def test_empty_histogram(self):
        h = Log2Histogram()
        assert h.count == 0
        # no samples → no order statistic; nan, not a fake 0.0
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.quantile(0.99))
        assert h.mean == 0.0
        # serialization stays clean: no nan leaks into JSON documents
        d = h.to_dict()
        assert d["quantiles"] == {}
        assert json.loads(json.dumps(d)) == d


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

class TestFlightRecorder:
    def test_ring_bounds_and_drop_count(self):
        fr = FlightRecorder(capacity=8)
        for i in range(20):
            fr.record("tick", i=i)
        assert len(fr) == 8
        assert fr.recorded == 20 and fr.dropped == 12
        kinds = [kind for _, kind, _ in fr.snapshot()]
        assert kinds == ["tick"] * 8
        assert fr.snapshot()[-1][2] == {"i": 19}

    def test_wrap_boundary_exact_capacity(self, tmp_path):
        """Exactly ``capacity`` events: nothing dropped, order untouched."""
        fr = FlightRecorder(capacity=8)
        for i in range(8):
            fr.record("tick", i=i)
        assert len(fr) == 8 and fr.recorded == 8 and fr.dropped == 0
        assert [e[2]["i"] for e in fr.snapshot()] == list(range(8))
        doc = load_flight_dump(fr.dump(tmp_path / "full.json"))
        assert [e["detail"]["i"] for e in doc["events"]] == list(range(8))
        assert validate_flight_dump(doc) == []

    def test_wrap_boundary_capacity_plus_one(self, tmp_path):
        """One past capacity: the oldest event (only) falls off, and the
        dump is still in record order across the wrap seam."""
        fr = FlightRecorder(capacity=8)
        for i in range(9):
            fr.record("tick", i=i)
        assert len(fr) == 8 and fr.recorded == 9 and fr.dropped == 1
        assert [e[2]["i"] for e in fr.snapshot()] == list(range(1, 9))
        doc = load_flight_dump(fr.dump(tmp_path / "wrap.json"))
        assert [e["detail"]["i"] for e in doc["events"]] == list(range(1, 9))
        assert doc["dropped"] == 1

    def test_wrap_ordering_many_times_around(self):
        """Timestamps and payloads stay monotone after many wraps."""
        fr = FlightRecorder(capacity=5)
        for i in range(23):
            fr.record("tick", i=i)
        snap = fr.snapshot()
        assert [e[2]["i"] for e in snap] == list(range(18, 23))
        ts = [e[0] for e in snap]
        assert ts == sorted(ts)

    def test_dump_roundtrip(self, tmp_path):
        fr = FlightRecorder(capacity=4)
        fr.record("a", x=1)
        fr.record("b")
        path = fr.dump(tmp_path / "f.json", reason="manual")
        doc = load_flight_dump(path)
        assert doc["reason"] == "manual"
        assert [e["kind"] for e in doc["events"]] == ["a", "b"]
        assert validate_flight_dump(doc) == []
        text = format_flight_dump(doc, last=1)
        assert "1 shown / 2 recorded" in text and "b" in text

    def test_load_rejects_wrong_schema(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="not a flight dump"):
            load_flight_dump(p)

    def test_crash_dump_fires_once_per_arm(self, tmp_path):
        fr = FlightRecorder()
        fr.record("work")
        assert fr.maybe_crash_dump(RuntimeError("x")) is None  # unarmed
        fr.arm(tmp_path / "crash.json")
        first = fr.maybe_crash_dump(RuntimeError("boom"))
        assert first is not None
        assert fr.maybe_crash_dump(RuntimeError("again")) is None  # latched
        doc = load_flight_dump(first)
        assert doc["reason"].startswith("crash: RuntimeError")

    def test_disabled_recorder_is_free(self):
        """The disabled path is one attribute load and an empty call."""
        import time

        t0 = time.perf_counter()
        for _ in range(100_000):
            NULL_FLIGHT.record("x", a=1)
        assert time.perf_counter() - t0 < 1.0
        assert NULL_FLIGHT.recorded == 0 and len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.maybe_crash_dump(RuntimeError("x")) is None

    def test_driver_crash_writes_dump(self, tmp_path):
        p = clustered_clumps(300, seed=2)

        class Crashing(GravityDriver):
            def create_particles(self, config):
                return p

            def run_iteration(self, iteration):
                if iteration >= 1:
                    raise RuntimeError("injected")
                return super().run_iteration(iteration)

        driver = Crashing(Configuration(num_iterations=3), theta=0.7)
        telemetry = Telemetry()
        dump = tmp_path / "blackbox.json"
        telemetry.flight.arm(dump)
        with use_telemetry(telemetry):
            driver.enable_telemetry(telemetry)
            with pytest.raises(RuntimeError, match="injected"):
                driver.run()
        doc = load_flight_dump(dump)
        assert doc["reason"].startswith("crash: RuntimeError")
        kinds = {e["kind"] for e in doc["events"]}
        assert "span.open" in kinds and "span.close" in kinds


# ---------------------------------------------------------------------------
# Trace-context propagation + worker-clock spans (tentpole c, satellite 1)
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=None)
def _run_parallel_gravity(backend: str, n: int = 400):
    """One telemetry-enabled parallel gravity run per backend, shared by
    the nesting/latency/cache tests (read-only consumers)."""
    p = clustered_clumps(n, seed=11)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p

    driver = Main(Configuration(num_iterations=1, bucket_size=16), theta=0.7)
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        driver.enable_telemetry(telemetry)
        driver.enable_parallel(backend, workers=2)
        try:
            driver.run()
            exec_backend = driver._exec_backend
        finally:
            driver.disable_parallel()
    return driver, telemetry, exec_backend


@pytest.mark.parametrize("backend", ["threads", "processes"])
class TestTraceContext:
    def test_tasks_nest_under_phase_span(self, backend):
        driver, telemetry, _ = _run_parallel_gravity(backend)
        doc = chrome_trace(telemetry)
        assert validate_chrome_trace(doc, require_exec_tasks=True) == []
        tasks = [e for e in doc["traceEvents"] if e.get("name") == "exec.task"]
        phases = {e["args"]["span_id"]: e for e in doc["traceEvents"]
                  if e.get("ph") == "X" and "span_id" in e.get("args", {})}
        assert tasks, "parallel run produced no exec.task spans"
        for t in tasks:
            parent = phases[t["args"]["phase_span"]]
            assert parent["name"] == "traversal"
            assert t["dur"] >= 0
        if backend == "processes":
            assert all("clock_offset" in t["args"] for t in tasks)

    def test_worker_latency_merges_into_registry(self, backend):
        driver, telemetry, exec_backend = _run_parallel_gravity(backend)
        inst = telemetry.metrics.latency("exec.task.latency", backend=backend)
        n_tasks = len(exec_backend.last_tasks)
        assert n_tasks > 0
        assert inst.count == n_tasks
        assert inst.quantile(0.5) > 0.0
        snap = inst.snapshot()
        assert snap["type"] == "latency" and snap["count"] == n_tasks


class TestExecCache:
    def test_process_worker_tree_cache_stats(self):
        driver, telemetry, backend = _run_parallel_gravity("processes")
        stats = backend.last_cache_stats
        assert stats is not None
        n_tasks = len(backend.last_tasks)
        # A fresh arena attaches once per worker; every later chunk hits.
        assert stats["attach_misses"] == 2
        assert stats["attach_hits"] == n_tasks - 2
        assert stats["hit_rate"] == pytest.approx((n_tasks - 2) / n_tasks)
        assert telemetry.metrics.total("exec.cache.attach_hits") == stats["attach_hits"]
        assert telemetry.metrics.total("exec.cache.attach_misses") == stats["attach_misses"]
        rep = driver.reports[-1].to_dict()
        assert rep["exec_cache"]["attach_hits"] == stats["attach_hits"]
        assert rep["exec_cache"]["hit_rate"] == pytest.approx(stats["hit_rate"])
        assert rep["latency"]["count"] == n_tasks


# ---------------------------------------------------------------------------
# SLO layer
# ---------------------------------------------------------------------------

class TestSLO:
    def test_parse_spec(self):
        spec = parse_slo_spec("lat<5ms,target=0.99,burn=1.5,window=0.25")
        assert spec.threshold == pytest.approx(5e-3)
        assert spec.target == 0.99
        assert spec.burn_limit == 1.5
        assert spec.window == 0.25

    @pytest.mark.parametrize("bad", [
        "", "lat<0ms", "lat>5ms", "5ms", "lat<5ms,target=2",
        "lat<5ms,frobnicate=1", "lat<5ms,target",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_slo_spec(bad)

    def test_burn_rate_violation(self):
        spec = parse_slo_spec("lat<5ms,target=0.99,burn=1.5")
        samples = [1e-3] * 90 + [10e-3] * 10
        report = evaluate_slo(spec, samples)
        assert report.violated
        long_w, short_w = report.windows
        # 10% bad against a 1% budget burns at 10x; the trailing quarter
        # is 40% bad -> 40x.
        assert long_w["burn_rate"] == pytest.approx(10.0)
        assert short_w["burn_rate"] == pytest.approx(40.0)
        assert "VIOLATED" in report.summary()
        assert validate_slo_report(report.to_dict()) == []

    def test_healthy_run_passes(self):
        spec = parse_slo_spec("lat<5ms,target=0.99")
        report = evaluate_slo(spec, [1e-3] * 100)
        assert not report.violated
        assert all(w["bad"] == 0 for w in report.windows)

    def test_short_window_catches_late_degradation(self):
        """A run that *became* slow violates even when the overall average
        is still inside budget."""
        spec = parse_slo_spec("lat<5ms,target=0.90,burn=1.0,window=0.1")
        samples = [1e-3] * 95 + [10e-3] * 5  # 5% bad overall, 50% bad lately
        report = evaluate_slo(spec, samples)
        long_w, short_w = report.windows
        assert not long_w["violated"]
        assert short_w["violated"] and report.violated

    def test_report_write_and_samples_from_reports(self, tmp_path):
        spec = parse_slo_spec("lat<1s")
        driver, _, _ = _run_parallel_gravity("threads")
        samples = samples_from_reports(driver.reports)
        assert len(samples) == len(driver.reports)
        report = evaluate_slo(spec, samples)
        path = report.write(tmp_path / "slo.json")
        doc = json.loads(path.read_text())
        assert validate_slo_report(doc) == []
        assert doc["n_samples"] == len(samples)

    def test_des_straggler_traffic_violates(self):
        """Acceptance: the same spec passes fault-free DES traffic and
        reports a burn-rate violation under injected stragglers."""
        from repro.bench import build_gravity_workload
        from repro.cache import CACHE_MODELS
        from repro.faults import parse_fault_spec
        from repro.runtime import MACHINES, simulate_traversal

        wl = build_gravity_workload(distribution="clustered", n=2000,
                                    n_partitions=256, n_subtrees=256,
                                    seed=7).workload
        kw = dict(machine=MACHINES["Stampede2"], n_processes=2,
                  workers_per_process=48, cache_model=CACHE_MODELS["WaitFree"],
                  collect_trace=True)
        spec = parse_slo_spec("lat<0.5ms,target=0.99,burn=1.0")

        clean = evaluate_slo(spec, samples_from_sim(simulate_traversal(wl, **kw)))
        slow = evaluate_slo(spec, samples_from_sim(simulate_traversal(
            wl, faults=parse_fault_spec("straggler=0.3x8,seed=3"), **kw)))
        assert not clean.violated
        assert slow.violated
        assert slow.quantiles["p99"] > clean.quantiles["p99"]


# ---------------------------------------------------------------------------
# Validators
# ---------------------------------------------------------------------------

class TestValidators:
    def test_trace_validator_catches_structural_problems(self):
        assert validate_chrome_trace({"traceEvents": "nope"})
        bad_event = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": 0.0, "pid": 1, "tid": 1},  # no dur
        ]}
        assert any("dur" in p for p in validate_chrome_trace(bad_event))

    def test_trace_validator_catches_orphan_task(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "traversal", "cat": "driver.phase",
             "ts": 0.0, "dur": 100.0, "pid": 1, "tid": 1,
             "args": {"span_id": 7}},
            {"ph": "X", "name": "exec.task", "cat": "exec",
             "ts": 50_000.0, "dur": 10.0, "pid": 1, "tid": 2,
             "args": {"phase_span": 7}},  # far outside the phase interval
        ]}
        assert any("exec.task" in p for p in
                   validate_chrome_trace(doc, require_exec_tasks=True))

    def test_trace_validator_requires_tasks_when_asked(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "traversal", "ts": 0.0, "dur": 1.0,
             "pid": 1, "tid": 1, "args": {"span_id": 1}},
        ]}
        assert validate_chrome_trace(doc) == []
        assert validate_chrome_trace(doc, require_exec_tasks=True)

    def test_flight_validator(self):
        assert validate_flight_dump({"schema": "wrong"})
        doc = {"schema": "repro.flight/1",
               "events": [{"t": 2.0, "kind": "a"}, {"t": 1.0, "kind": "b"}]}
        assert any("monotonic" in p for p in validate_flight_dump(doc))

    def test_slo_validator(self):
        assert validate_slo_report({"schema": "wrong"})


# ---------------------------------------------------------------------------
# Dashboard + status feed
# ---------------------------------------------------------------------------

class TestDashboard:
    SNAP = {
        "schema": STATUS_SCHEMA, "pipeline": "Toy", "iteration": 3,
        "backend": "threads", "workers": 2, "n_particles": 1000,
        "wall_time": 0.5, "throughput": 2000.0,
        "phases": {"tree_build": 0.1, "traversal": 0.4},
        "worker_lanes": [{"lane": 0, "busy": 0.2, "tasks": 3},
                         {"lane": 1, "busy": 0.1, "tasks": 2}],
        "cache": {"attach_hits": 3, "attach_misses": 1, "hit_rate": 0.75},
        "latency": {"p50": 0.001, "p99": 0.003},
    }

    def test_render_is_pure_and_complete(self):
        dash = Dashboard(use_ansi=False)
        text = dash.render(self.SNAP)
        assert text == dash.render(self.SNAP)
        assert "Toy iter 3" in text
        assert "traversal" in text and "80.0%" in text
        assert "lane   0" in text and "3 tasks" in text
        assert "hit rate  75.0%" in text and "3 hits / 1 misses" in text
        assert "p50=1.000ms" in text
        assert "\x1b" not in text

    def test_render_empty_latency_says_n0(self):
        """count=0 renders an explicit "n=0" line — never nan quantiles or
        fake zeros (satellite: empty-histogram surfacing)."""
        snap = dict(self.SNAP, latency={}, latency_count=0)
        text = Dashboard(use_ansi=False).render(snap)
        assert "task latency" in text and "n=0 (no task samples yet)" in text
        assert "nan" not in text
        # and a populated histogram advertises its sample count
        snap2 = dict(self.SNAP, latency_count=5)
        assert "n=5" in Dashboard(use_ansi=False).render(snap2)

    def test_ansi_update_clears_screen(self):
        import io

        buf = io.StringIO()
        dash = Dashboard(stream=buf, use_ansi=True)
        dash.update(self.SNAP)
        assert buf.getvalue().startswith("\x1b[2J\x1b[H")

    def test_status_writer_roundtrip(self, tmp_path):
        path = tmp_path / "status.jsonl"
        w = StatusWriter(path)
        assert path.exists()  # eager create, so a follower can tail
        w.update({"iteration": 0})
        w.update({"iteration": 1})
        snaps = read_status_file(path)
        assert [s["iteration"] for s in snaps] == [0, 1]
        assert all(s["schema"] == STATUS_SCHEMA for s in snaps)

    def test_read_skips_partial_line(self, tmp_path):
        path = tmp_path / "status.jsonl"
        path.write_text('{"iteration": 0}\n{"iter')
        assert len(read_status_file(path)) == 1

    def test_follow_yields_appended_snapshots(self, tmp_path):
        path = tmp_path / "status.jsonl"
        w = StatusWriter(path)
        w.update({"iteration": 0})

        def fake_sleep(_):
            # Append one snapshot per poll, then stop after three.
            if w.written < 3:
                w.update({"iteration": w.written})

        gen = follow_status_file(path, poll=0.0,
                                 stop=lambda: w.written >= 3,
                                 sleep=fake_sleep)
        seen = [s["iteration"] for s in gen]
        assert seen == [0, 1, 2]

    def test_follow_buffers_torn_tail_line(self, tmp_path):
        """A half-written JSONL tail (torn write) must not be parsed or
        crash the follower; it is buffered and yielded once the writer
        finishes the line (satellite: `repro top --follow` tail skip)."""
        path = tmp_path / "status.jsonl"
        whole = json.dumps({"iteration": 0}) + "\n"
        torn = json.dumps({"iteration": 1})
        path.write_text(whole + torn[:7])  # mid-record, no newline
        steps = iter([
            lambda: path.write_text(whole + torn + "\n"),  # complete it
            lambda: None,
        ])

        def fake_sleep(_):
            next(steps, lambda: None)()

        done = iter([False, False, False, True])
        gen = follow_status_file(path, poll=0.0, stop=lambda: next(done),
                                 sleep=fake_sleep)
        assert [s["iteration"] for s in gen] == [0, 1]

    def test_follow_skips_malformed_complete_line(self, tmp_path):
        path = tmp_path / "status.jsonl"
        path.write_text('{"iteration": 0}\nnot json at all\n'
                        '\xff\xfe garbage\n{"iteration": 2}\n')
        done = iter([False, True])
        gen = follow_status_file(path, poll=0.0, stop=lambda: next(done),
                                 sleep=lambda _: None)
        assert [s["iteration"] for s in gen] == [0, 2]

    def test_follow_restarts_after_truncation(self, tmp_path):
        """Writer restart (file truncated under the follower) resets the
        offset so new snapshots still arrive."""
        path = tmp_path / "status.jsonl"
        path.write_text('{"iteration": 7, "pipeline": "OldRun"}\n')
        steps = iter([
            lambda: path.write_text('{"iteration": 0}\n'),  # shorter file
            lambda: None,
        ])

        def fake_sleep(_):
            next(steps, lambda: None)()

        done = iter([False, False, False, True])
        gen = follow_status_file(path, poll=0.0, stop=lambda: next(done),
                                 sleep=fake_sleep)
        assert [s["iteration"] for s in gen] == [7, 0]

    def test_driver_feeds_dashboard_and_status(self, tmp_path):
        import io

        p = clustered_clumps(300, seed=4)

        class Main(GravityDriver):
            def create_particles(self, config):
                return p

        driver = Main(Configuration(num_iterations=2), theta=0.7)
        buf = io.StringIO()
        driver.enable_dashboard(Dashboard(stream=buf, use_ansi=False))
        writer = driver.enable_status(tmp_path / "s.jsonl")
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            driver.enable_telemetry(telemetry)
            driver.run()
        assert "repro top — Main" in buf.getvalue()
        assert "traversal" in buf.getvalue()
        snaps = read_status_file(writer.path)
        assert [s["iteration"] for s in snaps] == [0, 1]
        assert snaps[0]["phases"]


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCLIObs:
    def test_gravity_full_obs_run(self, capsys, tmp_path):
        flight = tmp_path / "flight.json"
        slo = tmp_path / "slo.json"
        status = tmp_path / "status.jsonl"
        trace = tmp_path / "trace.json"
        assert main([
            "gravity", "--n", "500", "--iterations", "2",
            "--slo", "lat<60s", "--slo-report", str(slo),
            "--flight", str(flight), "--status-file", str(status),
            "--trace", str(trace), "--backend", "threads", "--workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO lat<60s: ok" in out
        assert "wrote flight recording" in out
        assert validate_chrome_trace(json.loads(trace.read_text()),
                                     require_exec_tasks=True) == []
        assert load_flight_dump(flight)["events"]
        assert validate_slo_report(json.loads(slo.read_text())) == []
        assert len(read_status_file(status)) == 2

        assert main(["obs", "dump", str(flight), "--last", "5"]) == 0
        assert "5 shown" in capsys.readouterr().out
        assert main(["obs", "validate-trace", str(trace),
                     "--require-exec-tasks"]) == 0
        assert main(["obs", "validate-slo", str(slo)]) == 0
        assert main(["top", str(status)]) == 0
        assert "repro top — Main iter 1" in capsys.readouterr().out

    def test_obs_validators_reject_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main(["obs", "dump", str(bad)]) == 2
        assert main(["obs", "validate-slo", str(bad)]) == 1
        assert main(["obs", "validate-trace", str(bad)]) == 1
        missing = tmp_path / "missing.json"
        assert main(["obs", "dump", str(missing)]) == 2
        assert main(["top", str(missing)]) == 2
        capsys.readouterr()

    def test_top_live_pipeline(self, capsys):
        assert main(["top", "gravity", "--n", "400", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top — Main") == 2
        assert "traversal" in out

    def test_scale_slo_exit_codes(self, capsys):
        argv = ["scale", "--n", "2000", "--cores", "96",
                "--slo", "lat<0.5ms,target=0.99,burn=1.0"]
        assert main(argv) == 0
        assert "SLO" in capsys.readouterr().out
        assert main(argv + ["--faults", "straggler=0.3x8,seed=3"]) == 1
        assert "VIOLATED" in capsys.readouterr().out
