"""Hilbert SFC keys, tipsy I/O, and SPH viscosity extensions."""

import numpy as np
import pytest

from repro.geometry import (
    Box3,
    hilbert_decode,
    hilbert_encode,
    hilbert_keys,
    morton_keys,
)
from repro.particles import (
    ParticleSet,
    clustered_clumps,
    keplerian_disk,
    load_tipsy,
    save_tipsy,
    uniform_cube,
)


class TestHilbert:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        ix = rng.integers(0, 2**21, 2000, dtype=np.uint64)
        iy = rng.integers(0, 2**21, 2000, dtype=np.uint64)
        iz = rng.integers(0, 2**21, 2000, dtype=np.uint64)
        dx, dy, dz = hilbert_decode(hilbert_encode(ix, iy, iz))
        assert np.array_equal(ix, dx)
        assert np.array_equal(iy, dy)
        assert np.array_equal(iz, dz)

    def test_continuity(self):
        """The defining Hilbert property: consecutive keys decode to
        face-adjacent cells (|step| == 1 in exactly one axis)."""
        for start in (0, 987654321, (1 << 40) + 17):
            ks = np.arange(2000, dtype=np.uint64) + np.uint64(start)
            x, y, z = hilbert_decode(ks)
            step = (
                np.abs(np.diff(x.astype(np.int64)))
                + np.abs(np.diff(y.astype(np.int64)))
                + np.abs(np.diff(z.astype(np.int64)))
            )
            assert np.all(step == 1), start

    def test_morton_is_not_continuous(self):
        """Contrast: the Morton curve jumps at octant boundaries."""
        from repro.geometry import morton_decode

        ks = np.arange(2000, dtype=np.uint64)
        x, y, z = morton_decode(ks)
        step = (
            np.abs(np.diff(x.astype(np.int64)))
            + np.abs(np.diff(y.astype(np.int64)))
            + np.abs(np.diff(z.astype(np.int64)))
        )
        assert step.max() > 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hilbert_encode(np.array([1 << 21]), np.array([0]), np.array([0]))

    def test_keys_unique_for_distinct_cells(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, (500, 3))
        keys = hilbert_keys(pts, Box3([0, 0, 0], [1, 1, 1]))
        assert len(np.unique(keys)) == 500

    def test_hilbert_slices_more_compact_than_morton(self):
        """Partition slices along the Hilbert curve have smaller bounding
        volumes than Morton slices — the locality payoff."""
        p = uniform_cube(6000, seed=2)
        box = p.bounding_box().cubified()

        def mean_slice_volume(keys, n_parts=8):
            order = np.argsort(keys)
            vols = []
            for chunk in np.array_split(order, n_parts):
                sub = p.position[chunk]
                vols.append(float(np.prod(sub.max(axis=0) - sub.min(axis=0))))
            return np.mean(vols)

        v_h = mean_slice_volume(hilbert_keys(p.position, box))
        v_m = mean_slice_volume(morton_keys(p.position, box))
        assert v_h < v_m

    def test_hilbert_decomposer_registered(self):
        from repro.decomp import get_decomposer

        parts = get_decomposer("hilbert").assign(clustered_clumps(2000, seed=3), 8)
        counts = np.bincount(parts, minlength=8)
        # near-perfect count balance (ties at splitter keys can shift one
        # or two particles between neighbouring slices)
        assert counts.max() - counts.min() <= 2


class TestTipsy:
    def test_roundtrip_mixed_species(self, tmp_path):
        d = keplerian_disk(60, seed=1)  # ptype 0/1/2 present
        d.add_field("potential", np.linspace(-1, 0, len(d)))
        path = tmp_path / "snap.tipsy"
        save_tipsy(path, d, time=2.25)
        q, t = load_tipsy(path)
        assert t == 2.25
        assert len(q) == len(d)
        assert np.bincount(q.ptype.astype(int)).tolist() == [60, 1, 1]
        # per-species totals preserved (order is species-sorted)
        assert q.mass.sum() == pytest.approx(d.mass.sum(), rel=1e-6)
        assert np.allclose(
            np.sort(q.position.ravel()), np.sort(d.position.ravel()), atol=1e-5
        )
        assert np.allclose(np.sort(q.potential), np.sort(d.potential), atol=1e-6)

    def test_dark_only_default(self, tmp_path):
        p = uniform_cube(40, seed=2)
        path = tmp_path / "dm.tipsy"
        save_tipsy(path, p)
        q, t = load_tipsy(path)
        assert np.all(q.ptype == 1)
        assert t == 0.0

    def test_invalid_ptype_rejected(self, tmp_path):
        p = ParticleSet(np.zeros((3, 3)), ptype=np.array([0, 1, 7], dtype=np.int8))
        with pytest.raises(ValueError):
            save_tipsy(tmp_path / "bad.tipsy", p)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "trunc.tipsy"
        save_tipsy(path, uniform_cube(10, seed=3))
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(ValueError):
            load_tipsy(path)


class TestViscosity:
    @pytest.fixture(scope="class")
    def gas(self):
        from repro.apps.sph import compute_density_knn, equation_of_state
        from repro.trees import build_tree

        rng = np.random.default_rng(4)
        pos = rng.uniform(-0.5, 0.5, (1500, 3))
        p = ParticleSet(pos, -2.0 * pos, np.full(1500, 1 / 1500))  # converging
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        st = compute_density_knn(tree, k=24)
        P = equation_of_state(st.density, internal_energy=0.1)
        return tree, st, P

    def test_viscosity_heats_converging_flow(self, gas):
        from repro.apps.sph import ViscosityParams, compute_sph_accelerations

        tree, st, P = gas
        _, du_inviscid = compute_sph_accelerations(
            tree, st.neighbors, st.density, P, st.h, viscosity=None
        )
        _, du_viscous = compute_sph_accelerations(
            tree, st.neighbors, st.density, P, st.h, viscosity=ViscosityParams()
        )
        assert du_viscous.mean() > du_inviscid.mean()
        # compression does positive PdV work even without viscosity
        assert du_inviscid.mean() > 0

    def test_viscosity_inactive_for_expanding_flow(self, gas):
        from repro.apps.sph import ViscosityParams, compute_sph_accelerations
        from repro.apps.sph import compute_density_knn, equation_of_state
        from repro.trees import build_tree

        tree, st, P = gas
        expanding = ParticleSet(
            tree.particles.position.copy(),
            +2.0 * tree.particles.position,
            tree.particles.mass.copy(),
        )
        t2 = build_tree(expanding, tree_type="oct", bucket_size=16)
        st2 = compute_density_knn(t2, k=24)
        P2 = equation_of_state(st2.density, internal_energy=0.1)
        a_nv, _ = compute_sph_accelerations(
            t2, st2.neighbors, st2.density, P2, st2.h, viscosity=None
        )
        a_v, _ = compute_sph_accelerations(
            t2, st2.neighbors, st2.density, P2, st2.h, viscosity=ViscosityParams()
        )
        # receding pairs see no viscous force at all
        assert np.allclose(a_nv, a_v)

    def test_viscous_force_damps_relative_motion(self):
        """Two approaching particles: viscosity pushes them apart harder
        than pressure alone."""
        from repro.apps.sph import ViscosityParams, compute_sph_accelerations
        from repro.apps.knn import knn_search
        from repro.trees import build_tree

        pos = np.array([[0.0, 0, 0], [0.1, 0, 0], [0.0, 0.1, 0], [0.1, 0.1, 0]])
        vel = np.array([[1.0, 0, 0], [-1.0, 0, 0], [1.0, 0, 0], [-1.0, 0, 0]])
        p = ParticleSet(pos, vel, np.ones(4))
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        nbr = knn_search(tree, k=3)
        rho = np.ones(4)
        P = np.ones(4)
        h = np.full(4, 0.3)
        a_nv, _ = compute_sph_accelerations(tree, nbr, rho, P, h, viscosity=None)
        a_v, _ = compute_sph_accelerations(
            tree, nbr, rho, P, h,
            sound_speed=np.ones(4), viscosity=ViscosityParams(alpha=1.0),
        )
        # x-component of the repulsion grows for the approaching pair
        order = np.argsort(tree.particles.position[:, 0])
        left = order[:2]
        assert np.all(a_v[left, 0] <= a_nv[left, 0])
