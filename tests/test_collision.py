"""Collision detection, orbital mechanics, and the planetesimal driver."""

import numpy as np
import pytest

from repro.apps.collision import (
    RESONANCES,
    PlanetesimalDriver,
    closest_approach,
    detect_collisions,
    orbital_elements,
    orbital_period,
    resonance_semi_major_axis,
)
from repro.core import Configuration
from repro.particles import DiskParams, ParticleSet, keplerian_disk
from repro.particles.generators import G_AU_MSUN_YR
from repro.trees import build_tree


class TestOrbits:
    def test_circular_orbit_elements(self):
        r = 2.5
        v = np.sqrt(G_AU_MSUN_YR / r)
        el = orbital_elements(np.array([[r, 0, 0]]), np.array([[0, v, 0]]))
        assert el["a"][0] == pytest.approx(r, rel=1e-10)
        assert el["e"][0] == pytest.approx(0.0, abs=1e-10)
        assert el["inc"][0] == pytest.approx(0.0, abs=1e-10)

    def test_eccentric_orbit(self):
        # launch at pericentre q with v > v_circ: a = q/(1-e)
        q = 1.0
        e = 0.3
        v_peri = np.sqrt(G_AU_MSUN_YR / q * (1 + e))
        el = orbital_elements(np.array([[q, 0, 0]]), np.array([[0, v_peri, 0]]))
        assert el["e"][0] == pytest.approx(e, rel=1e-10)
        assert el["a"][0] == pytest.approx(q / (1 - e), rel=1e-10)

    def test_inclined_orbit(self):
        r = 1.0
        v = np.sqrt(G_AU_MSUN_YR / r)
        incl = 0.2
        vel = np.array([[0, v * np.cos(incl), v * np.sin(incl)]])
        el = orbital_elements(np.array([[r, 0, 0]]), vel)
        assert el["inc"][0] == pytest.approx(incl, rel=1e-8)

    def test_kepler_third_law(self):
        assert orbital_period(1.0) == pytest.approx(1.0)  # 1 AU -> 1 yr
        assert orbital_period(4.0) == pytest.approx(8.0)

    def test_resonance_locations(self):
        """The paper's 2:1 resonance sits at 3.27 AU for a planet at 5.2."""
        assert resonance_semi_major_axis(5.2, 2, 1) == pytest.approx(3.275, abs=0.01)
        a3 = resonance_semi_major_axis(5.2, 3, 1)
        a2 = resonance_semi_major_axis(5.2, 2, 1)
        a53 = resonance_semi_major_axis(5.2, 5, 3)
        assert a3 < a2 < a53  # left-to-right order in Fig 12

    def test_resonance_validation(self):
        with pytest.raises(ValueError):
            resonance_semi_major_axis(5.2, 1, 2)

    def test_resonances_constant(self):
        assert RESONANCES == ((3, 1), (2, 1), (5, 3))


class TestClosestApproach:
    def test_head_on(self):
        t, d2 = closest_approach(np.array([[2.0, 0, 0]]), np.array([[-1.0, 0, 0]]), dt=5.0)
        assert t[0] == pytest.approx(2.0)
        assert d2[0] == pytest.approx(0.0)

    def test_clamped_to_step(self):
        t, d2 = closest_approach(np.array([[2.0, 0, 0]]), np.array([[-1.0, 0, 0]]), dt=1.0)
        assert t[0] == 1.0
        assert d2[0] == pytest.approx(1.0)

    def test_receding(self):
        t, d2 = closest_approach(np.array([[1.0, 0, 0]]), np.array([[1.0, 0, 0]]), dt=1.0)
        assert t[0] == 0.0
        assert d2[0] == pytest.approx(1.0)

    def test_zero_relative_velocity(self):
        t, d2 = closest_approach(np.array([[1.0, 0, 0]]), np.zeros((1, 3)), dt=1.0)
        assert d2[0] == pytest.approx(1.0)


class TestDetector:
    def _two_body_set(self, sep, radius, v_rel=0.0):
        pos = np.array([[0.0, 0, 0], [sep, 0, 0], [5.0, 5, 5]])
        vel = np.array([[0.0, 0, 0], [-v_rel, 0, 0], [0.0, 0, 0]])
        return ParticleSet(pos, vel, np.ones(3), radius=np.full(3, radius))

    def test_overlapping_pair_detected(self):
        p = self._two_body_set(sep=0.05, radius=0.05)
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        events, _ = detect_collisions(tree, dt=0.1)
        assert len(events) == 1
        ev = events[0]
        assert ev.distance <= 0.1

    def test_separated_pair_not_detected(self):
        p = self._two_body_set(sep=0.5, radius=0.05)
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        events, _ = detect_collisions(tree, dt=0.01)
        assert events == []

    def test_approaching_pair_detected_mid_step(self):
        """Bodies that only touch during the drift are caught."""
        p = self._two_body_set(sep=1.0, radius=0.05, v_rel=10.0)
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        events, _ = detect_collisions(tree, dt=0.2, v_rel_max=10.0)
        assert len(events) == 1
        assert 0 < events[0].time < 0.2

    def test_pair_reported_once(self):
        p = self._two_body_set(sep=0.05, radius=0.05)
        tree = build_tree(p, tree_type="kd", bucket_size=1)
        events, _ = detect_collisions(tree, dt=0.1)
        keys = [(e.i, e.j) for e in events]
        assert len(keys) == len(set(keys)) == 1
        assert all(i < j for i, j in keys)

    def test_exclude_types(self):
        p = self._two_body_set(sep=0.05, radius=0.05)
        exclude = np.array([True, False, False])
        tree = build_tree(p, tree_type="kd", bucket_size=2)
        events, _ = detect_collisions(tree, dt=0.1, exclude_types=exclude)
        assert events == []

    def test_matches_brute_force_on_disk(self):
        disk = keplerian_disk(
            400, params=DiskParams(planetesimal_radius=8e-3), seed=21,
            include_star=False, include_planet=False,
        )
        tree = build_tree(disk, tree_type="longest", bucket_size=8)
        dt = 0.01
        events, _ = detect_collisions(tree, dt=dt)
        # brute force over all pairs
        pos = tree.particles.position
        vel = tree.particles.velocity
        radii = tree.particles.radius
        expect = set()
        for i in range(len(pos)):
            for j in range(i + 1, len(pos)):
                t, d2 = closest_approach(
                    (pos[j] - pos[i])[None], (vel[j] - vel[i])[None], dt
                )
                if d2[0] <= (radii[i] + radii[j]) ** 2:
                    expect.add((i, j))
        got = {(e.i, e.j) for e in events}
        assert got == expect


class TestPlanetesimalDriver:
    def _driver(self, merge=False, n=600, steps=5):
        params = DiskParams(planetesimal_radius=6e-3, eccentricity_dispersion=0.02)

        class Main(PlanetesimalDriver):
            def create_particles(self, config):
                return keplerian_disk(n, params=params, seed=22)

        cfg = Configuration(
            num_iterations=steps, tree_type="longest", decomp_type="longest",
            num_partitions=4, num_subtrees=4,
        )
        return Main(cfg, dt=0.01, merge=merge)

    def test_records_collisions_with_elements(self):
        d = self._driver()
        d.run()
        assert len(d.log) > 0
        arr = d.log.as_arrays()
        # recorded elements are physical: a within a factor of the disk
        assert np.all(arr["a"][np.isfinite(arr["a"])] > 0.5)
        assert np.all(arr["distance"] > 0)
        assert np.all(arr["period"][np.isfinite(arr["period"])] > 0)
        assert len(arr["time"]) == len(d.log)

    def test_orbits_stay_bound(self):
        d = self._driver(n=400, steps=10)
        d.run()
        p = d.particles
        disk = p.select(p.ptype == 0) if p.has_field("ptype") else p
        el = orbital_elements(disk.position, disk.velocity)
        ok = np.isfinite(el["a"])
        assert np.median(el["a"][ok]) == pytest.approx(2.9, rel=0.3)
        assert (el["e"][ok] < 1).mean() > 0.99

    def test_merging_reduces_count_conserves_mass_momentum(self):
        d = self._driver(merge=True, n=600, steps=5)
        d.configure(d.config)
        d.particles = d.create_particles(d.config)
        m0 = d.particles.mass.sum()
        n0 = len(d.particles)
        for it in range(5):
            d.run_iteration(it)
        assert len(d.particles) < n0
        assert d.particles.mass.sum() == pytest.approx(m0)


class TestProfileHelpers:
    def test_radial_profile_counts(self):
        from repro.apps.collision import collision_radial_profile

        d = np.array([2.1, 2.1, 3.0, 3.0, 3.0])
        edges = np.array([2.0, 2.5, 3.5])
        counts = collision_radial_profile(d, edges, per_area=False)
        assert counts.tolist() == [2.0, 3.0]
        per_area = collision_radial_profile(d, edges, per_area=True)
        # outer annulus is larger, so its per-area value drops more
        assert per_area[0] / counts[0] > per_area[1] / counts[1]

    def test_radial_profile_validation(self):
        from repro.apps.collision import collision_radial_profile

        with pytest.raises(ValueError):
            collision_radial_profile(np.array([2.0]), np.array([3.0, 2.0]))

    def test_resonance_excess_detects_pileup(self):
        from repro.apps.collision import resonance_excess

        rng = np.random.default_rng(1)
        background = rng.uniform(2.0, 4.0, 300)
        pileup = np.full(60, 3.27)  # 2:1 resonance
        exc = resonance_excess(np.concatenate([background, pileup]), 5.2)
        assert exc[(2, 1)] > 3.0
        assert exc[(3, 1)] < 2.0

    def test_resonance_excess_flat_background(self):
        from repro.apps.collision import resonance_excess

        rng = np.random.default_rng(2)
        exc = resonance_excess(rng.uniform(2.0, 4.0, 5000), 5.2)
        for v in exc.values():
            assert 0.5 < v < 1.6
