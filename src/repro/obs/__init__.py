"""Unified telemetry: spans, metrics, and Perfetto/Chrome-trace export.

The paper reads ParaTreeT's behaviour off observability artifacts —
Charm++ *Projections* timelines (Fig 9, Fig 12), cache hit/request counters
(Table II), per-phase profiles.  This package is the reproduction's
equivalent, one layer for the whole pipeline:

* :mod:`repro.obs.span` — nested :class:`Span`/:class:`Tracer` timing with
  real or simulated (DES) clocks;
* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  that absorbs the scattered stats objects (``TraversalStats``,
  ``FetchStats``, memsim ``CacheStats``, ``IterationReport``);
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  https://ui.perfetto.dev), CSV, and console reports;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade and the
  process-wide current telemetry (a no-op singleton when disabled).

Quick use::

    from repro.obs import Telemetry, use_telemetry, write_chrome_trace

    tel = Telemetry()
    with use_telemetry(tel):
        driver.run()                      # or any instrumented entry point
    write_chrome_trace(tel, "trace.json")

or end-to-end from the CLI::

    python -m repro gravity --n 5000 --trace t.json --metrics m.json
"""

from .span import NULL_TRACER, NullTracer, Span, Tracer
from .attr import (
    ATTR_SCHEMA,
    AttributionProfile,
    AttributionRecorder,
    format_chunk_heatmap,
)
from .hist import Log2Histogram, QUANTILES, quantile_label
from .flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
    format_flight_dump,
    load_flight_dump,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Latency,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
)
from .slo import (
    SLO_SCHEMA,
    SLOReport,
    SLOSpec,
    evaluate_slo,
    parse_slo_spec,
    samples_from_reports,
    samples_from_sim,
)
from .top import (
    STATUS_SCHEMA,
    Dashboard,
    StatusWriter,
    follow_status_file,
    read_status_file,
)
from .validate import (
    validate_attribution,
    validate_chrome_trace,
    validate_flight_dump,
    validate_slo_report,
)
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    traced,
    use_telemetry,
)
from .export import (
    chrome_trace,
    console_report,
    metrics_dict,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "ATTR_SCHEMA",
    "AttributionProfile",
    "AttributionRecorder",
    "format_chunk_heatmap",
    "Log2Histogram",
    "QUANTILES",
    "quantile_label",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "FLIGHT_SCHEMA",
    "load_flight_dump",
    "format_flight_dump",
    "Counter",
    "Gauge",
    "Histogram",
    "Latency",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "SLOSpec",
    "SLOReport",
    "SLO_SCHEMA",
    "parse_slo_spec",
    "evaluate_slo",
    "samples_from_reports",
    "samples_from_sim",
    "Dashboard",
    "StatusWriter",
    "STATUS_SCHEMA",
    "read_status_file",
    "follow_status_file",
    "validate_chrome_trace",
    "validate_slo_report",
    "validate_flight_dump",
    "validate_attribution",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "traced",
    "chrome_trace",
    "console_report",
    "metrics_dict",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]
