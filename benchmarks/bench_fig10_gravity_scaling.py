"""Fig 10 — ChaNGa vs ParaTreeT vs BasicTrav gravity iteration times.

Reproduces §III-A's comparison on the Summit configuration (84 workers per
node, 2-way SMT): monopole Barnes-Hut, uniform volume, SFC decomposition
over octrees.  The three curves:

* **ParaTreeT** — transposed traversal + wait-free shared cache;
* **BasicTrav** — ParaTreeT "modified to use the standard DFS traversal
  style": per-bucket compute factor, same shared cache;
* **ChaNGa** — per-bucket style *and* per-thread caches ("ChaNGa often
  makes the same remote fetch for multiple worker threads within the same
  process").

The reproduced claims: ParaTreeT 2-3x faster than ChaNGa across the sweep,
with BasicTrav in between, and the gap growing at scale as duplicate
fetches bite.
"""


from repro.bench import (
    build_gravity_workload,
    format_series,
    paper_reference,
    print_banner,
)
from repro.cache import PER_THREAD, WAITFREE
from repro.perf import benchmark as perf_benchmark
from repro.runtime import SUMMIT, simulate_traversal

NODES = (1, 4, 16, 64)
CONFIGS = {
    "ParaTreeT": ("transposed", WAITFREE),
    "BasicTrav": ("per-bucket", WAITFREE),
    "ChaNGa": ("per-bucket", PER_THREAD),
}


_CACHE = {}


@perf_benchmark("des.gravity_scaling", group="des",
                description="Fig 10 ParaTreeT point: 16 Summit nodes, wait-free cache")
def perf_gravity_scaling(quick=False):
    wl = build_gravity_workload(
        distribution="uniform", n=8_000 if quick else 25_000, seed=11
    ).workload

    def run():
        r = simulate_traversal(
            wl, machine=SUMMIT, n_processes=16,
            workers_per_process=SUMMIT.workers_per_node, cache_model=WAITFREE,
        )
        return {"sim_time": r.time, "requests": r.requests}

    return run


def _sweep(uniform_workload):
    if "sweep" in _CACHE:
        return _CACHE["sweep"]
    out = {name: [] for name in CONFIGS}
    for name, (style, cache) in CONFIGS.items():
        for nodes in NODES:
            r = simulate_traversal(
                uniform_workload.workload,
                machine=SUMMIT,
                n_processes=nodes,            # one process per node
                workers_per_process=SUMMIT.workers_per_node,
                cache_model=cache,
                traversal_style=style,
            )
            out[name].append(r.time)
    _CACHE["sweep"] = out
    return out


def test_fig10_shape(benchmark, uniform_workload):
    sweep = benchmark.pedantic(_sweep, args=(uniform_workload,), rounds=1, iterations=1)
    print_banner("Fig 10: average gravity iteration time on Summit (s)")
    print(format_series("nodes", list(NODES), sweep))
    lo, hi = paper_reference.FIG10_SPEEDUP_RANGE
    ratios = [c / p for p, c in zip(sweep["ParaTreeT"], sweep["ChaNGa"])]
    print(f"\nChaNGa/ParaTreeT ratio per point: {[round(r, 2) for r in ratios]}")
    print("paper: 'ParaTreeT performs iterations 2-3x faster from 1 to 256 nodes'")

    # ParaTreeT wins everywhere; by ~the paper's factor somewhere in the
    # sweep, and never by less than ~1.6x.
    assert all(r > 1.6 for r in ratios)
    assert any(lo <= r <= hi + 1.0 for r in ratios)
    # BasicTrav sits between the two ("to show the benefits of greater
    # cache efficiency" the style change alone accounts for part of it):
    # the style gap is large everywhere, the cache gap opens with scale.
    for p, b, c in zip(sweep["ParaTreeT"], sweep["BasicTrav"], sweep["ChaNGa"]):
        assert p < b <= c * 1.05
    assert sweep["ChaNGa"][-1] > sweep["BasicTrav"][-1]
    # Everyone strong-scales at these sizes; ParaTreeT keeps improving to
    # the last point (the paper's 256-node observation).
    pt = sweep["ParaTreeT"]
    assert all(a > b for a, b in zip(pt[:-1], pt[1:]))


def test_fig10_duplicate_fetches(benchmark, uniform_workload):
    """The mechanism behind the widening gap: per-thread caching sends a
    multiple of the requests the shared cache needs."""
    shared = benchmark.pedantic(
        lambda: simulate_traversal(
            uniform_workload.workload, machine=SUMMIT, n_processes=16,
            workers_per_process=SUMMIT.workers_per_node, cache_model=WAITFREE,
        ),
        rounds=1, iterations=1,
    )
    perthread = simulate_traversal(
        uniform_workload.workload, machine=SUMMIT, n_processes=16,
        workers_per_process=SUMMIT.workers_per_node, cache_model=PER_THREAD,
    )
    print(f"\nrequests at 16 nodes: shared={shared.requests:,} "
          f"per-thread={perthread.requests:,} "
          f"({perthread.requests / max(shared.requests, 1):.1f}x)")
    assert perthread.requests > 2 * shared.requests
    assert perthread.bytes_moved > 2 * shared.bytes_moved


def test_fig10_benchmark_paratreet_point(benchmark, uniform_workload):
    def run():
        return simulate_traversal(
            uniform_workload.workload, machine=SUMMIT, n_processes=16,
            workers_per_process=SUMMIT.workers_per_node, cache_model=WAITFREE,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.time > 0
