"""Flight recorder: a bounded ring buffer of structured runtime events.

The recorder is the black box of a run.  Producers all over the codebase
(span open/close, exec chunk completions, cache fill/park/resume, fault
retries, checkpoint commits, DES crash recoveries) call
:meth:`FlightRecorder.record`; the buffer keeps the most recent
``capacity`` events and drops the oldest, so memory stays bounded no
matter how long the run.  When a run dies, :meth:`maybe_crash_dump`
writes the buffer to disk so the failure leaves a record of what the
system was doing in its final moments; ``repro obs dump`` pretty-prints
that file.

When telemetry is off, every call site holds :data:`NULL_FLIGHT`, whose
``record`` is a bare ``pass`` — the disabled cost is one attribute load
and an empty call, which the overhead tests pin down.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "FLIGHT_SCHEMA",
    "load_flight_dump",
    "format_flight_dump",
]

#: schema tag written into every dump, bumped on breaking layout changes
FLIGHT_SCHEMA = "repro.flight/1"


class FlightRecorder:
    """Bounded ring buffer of ``(t, kind, detail)`` events."""

    def __init__(self, capacity: int = 4096,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.clock = clock
        self._ring: deque[tuple[float, str, dict[str, Any]]] = deque(maxlen=capacity)
        #: total events ever recorded (recorded - len(ring) = dropped)
        self.recorded = 0
        self._armed_path: Path | None = None
        self._crash_dumped = False

    @property
    def enabled(self) -> bool:
        return True

    def record(self, kind: str, **detail: Any) -> None:
        """Append one event; O(1), never raises on a full buffer."""
        self.recorded += 1
        self._ring.append((self.clock(), kind, detail))

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def snapshot(self) -> list[tuple[float, str, dict[str, Any]]]:
        """Oldest-first copy of the current buffer contents."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    # -- dumping -------------------------------------------------------------
    def to_dict(self, reason: str = "manual") -> dict[str, Any]:
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "wall_time": time.time(),
            "events": [
                {"t": t, "kind": kind, **({"detail": detail} if detail else {})}
                for t, kind, detail in self._ring
            ],
        }

    def dump(self, path: str | Path, reason: str = "manual") -> Path:
        """Write the buffer as JSON; returns the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(reason), indent=2))
        return path

    def arm(self, path: str | Path) -> None:
        """Arm dump-on-crash: the next :meth:`maybe_crash_dump` writes to
        ``path``.  Re-arming resets the once-per-arm latch."""
        self._armed_path = Path(path)
        self._crash_dumped = False

    def maybe_crash_dump(self, exc: BaseException | None = None) -> Path | None:
        """Dump to the armed path (once per arm); no-op when unarmed."""
        if self._armed_path is None or self._crash_dumped:
            return None
        self._crash_dumped = True
        reason = f"crash: {type(exc).__name__}: {exc}" if exc is not None else "crash"
        return self.dump(self._armed_path, reason=reason)


class NullFlightRecorder:
    """No-op recorder installed when telemetry is disabled."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def record(self, kind: str, **detail: Any) -> None:
        pass

    def __len__(self) -> int:
        return 0

    @property
    def recorded(self) -> int:
        return 0

    @property
    def dropped(self) -> int:
        return 0

    def snapshot(self) -> list:
        return []

    def clear(self) -> None:
        pass

    def arm(self, path) -> None:
        pass

    def maybe_crash_dump(self, exc=None) -> None:
        return None


NULL_FLIGHT = NullFlightRecorder()


# -- reading dumps back ------------------------------------------------------

def load_flight_dump(path: str | Path) -> dict[str, Any]:
    """Load and schema-check a flight dump file."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(
            f"not a flight dump (schema={doc.get('schema')!r}, "
            f"expected {FLIGHT_SCHEMA!r})"
        )
    return doc


def format_flight_dump(doc: dict[str, Any], last: int | None = None) -> str:
    """Human-readable rendering of a dump (``repro obs dump``)."""
    events = doc.get("events", [])
    shown = events if last is None else events[-last:]
    lines = [
        f"flight recorder dump — reason: {doc.get('reason', '?')}",
        f"  events: {len(shown)} shown / {doc.get('recorded', len(events))} "
        f"recorded ({doc.get('dropped', 0)} dropped, "
        f"capacity {doc.get('capacity', '?')})",
    ]
    t0 = shown[0]["t"] if shown else 0.0
    for ev in shown:
        detail = ev.get("detail", {})
        extras = " ".join(f"{k}={v}" for k, v in detail.items())
        lines.append(f"  +{ev['t'] - t0:10.6f}s  {ev['kind']:<24s} {extras}".rstrip())
    return "\n".join(lines)
