"""Tree builders: invariants, geometry, and type-specific properties."""

import numpy as np
import pytest

from repro.particles import ParticleSet, clustered_clumps, keplerian_disk, uniform_cube
from repro.trees import (
    TreeBuildConfig,
    TreeType,
    build_tree,
    check_tree_invariants,
)
from repro.trees.build import register_tree_type

ALL_TYPES = ["oct", "kd", "longest"]
GENERATORS = {
    "uniform": lambda: uniform_cube(1500, seed=1),
    "clustered": lambda: clustered_clumps(1500, seed=2),
    "disk": lambda: keplerian_disk(1500, seed=3),
}


@pytest.mark.parametrize("tree_type", ALL_TYPES)
@pytest.mark.parametrize("dist", list(GENERATORS))
def test_invariants_all_types_all_distributions(tree_type, dist):
    particles = GENERATORS[dist]()
    tree = build_tree(particles, tree_type=tree_type, bucket_size=14)
    check_tree_invariants(tree)


@pytest.mark.parametrize("tree_type", ALL_TYPES)
def test_bucket_size_respected(tree_type):
    particles = uniform_cube(800, seed=5)
    tree = build_tree(particles, tree_type=tree_type, bucket_size=8)
    counts = tree.pend[tree.leaf_indices] - tree.pstart[tree.leaf_indices]
    assert counts.max() <= 8
    assert counts.min() >= 1


@pytest.mark.parametrize("tree_type", ALL_TYPES)
def test_particles_preserved(tree_type):
    particles = uniform_cube(300, seed=6)
    tree = build_tree(particles, tree_type=tree_type, bucket_size=4)
    # The tree's particle set is a permutation of the input.
    orig_sorted = np.sort(particles.position[:, 0])
    tree_sorted = np.sort(tree.particles.position[:, 0])
    assert np.array_equal(orig_sorted, tree_sorted)
    assert np.array_equal(np.sort(tree.particles.orig_index), np.arange(300))


class TestOctreeSpecifics:
    def test_branch_factor_at_most_8(self):
        tree = build_tree(uniform_cube(2000, seed=0), tree_type="oct", bucket_size=8)
        assert tree.n_children.max() <= 8

    def test_empty_children_skipped(self):
        """All children hold at least one particle (no empty octants)."""
        tree = build_tree(clustered_clumps(1000, seed=1), tree_type="oct", bucket_size=8)
        internal = tree.first_child != -1
        for i in np.flatnonzero(internal):
            for c in tree.children(i):
                assert tree.pend[c] > tree.pstart[c]

    def test_root_box_is_cube(self):
        tree = build_tree(keplerian_disk(500, seed=2), tree_type="oct", bucket_size=8)
        size = tree.box_hi[0] - tree.box_lo[0]
        assert np.allclose(size, size[0])

    def test_children_boxes_are_octants(self):
        tree = build_tree(uniform_cube(500, seed=3), tree_type="oct", bucket_size=8)
        i = 0
        center = 0.5 * (tree.box_lo[i] + tree.box_hi[i])
        for c in tree.children(i):
            lo, hi = tree.box_lo[c], tree.box_hi[c]
            # each face is either the parent's or the center plane
            for d in range(3):
                assert lo[d] in (tree.box_lo[i][d], center[d])
                assert hi[d] in (tree.box_hi[i][d], center[d])

    def test_keys_are_prefix_codes(self):
        """A child's key is parent_key * 8 + octant."""
        tree = build_tree(uniform_cube(500, seed=4), tree_type="oct", bucket_size=8)
        for i in range(tree.n_nodes):
            for c in tree.children(i):
                assert int(tree.key[c]) >> 3 == int(tree.key[i])

    def test_identical_points_hit_depth_cap(self):
        """Duplicated positions cannot be separated; the depth cap stops
        recursion instead of looping forever."""
        pos = np.zeros((40, 3))
        tree = build_tree(ParticleSet(pos), tree_type="oct", bucket_size=4)
        # All particles share one Morton key: recursion descends a chain of
        # single-child nodes until the key-resolution cap, then gives up and
        # leaves one (oversized) bucket.
        assert tree.n_leaves == 1
        assert tree.depth == 21
        leaf = int(tree.leaf_indices[0])
        assert tree.node_particle_count(leaf) == 40


class TestBinarySpecifics:
    def test_kd_is_balanced(self):
        tree = build_tree(clustered_clumps(1024, seed=5), tree_type="kd", bucket_size=8)
        counts = tree.pend[tree.leaf_indices] - tree.pstart[tree.leaf_indices]
        # median splits: leaf populations differ by at most a factor ~2
        assert counts.max() <= 2 * max(counts.min(), 4)

    def test_kd_cycles_axes(self):
        tree = build_tree(uniform_cube(512, seed=6), tree_type="kd", bucket_size=4)
        # level-0 split is along x: children boxes differ in x extent only
        left, right = tree.children(0)
        assert tree.box_hi[left][0] <= tree.box_lo[right][0] + 1e-12
        assert np.allclose(tree.box_lo[left][1:], tree.box_lo[right][1:])

    def test_longest_dim_splits_longest(self):
        """On a flat disk, the longest-dimension tree never splits z while
        x/y extents dominate (the paper's §IV-B argument)."""
        disk = keplerian_disk(2000, seed=7)
        tree = build_tree(disk, tree_type="longest", bucket_size=16)
        for i in range(tree.n_nodes):
            kids = tree.children(i)
            if len(kids) != 2:
                continue
            sizes = tree.box_hi[i] - tree.box_lo[i]
            left = kids[0]
            # the split axis is where the child's hi differs from parent's
            split_axis = int(np.argmax(np.abs(tree.box_hi[left] - tree.box_hi[i])))
            assert split_axis == int(np.argmax(sizes))

    def test_median_split_counts(self):
        tree = build_tree(uniform_cube(1000, seed=8), tree_type="longest", bucket_size=8)
        for i in range(tree.n_nodes):
            kids = tree.children(i)
            if len(kids) == 2:
                n_left = tree.pend[kids[0]] - tree.pstart[kids[0]]
                n_right = tree.pend[kids[1]] - tree.pstart[kids[1]]
                assert abs(n_left - n_right) <= 1


class TestConfigAndRegistry:
    def test_invalid_bucket(self):
        with pytest.raises(ValueError):
            TreeBuildConfig(bucket_size=0)

    def test_invalid_type(self):
        with pytest.raises(ValueError):
            TreeBuildConfig(tree_type="triangular")

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(TypeError):
            build_tree(uniform_cube(10, seed=0), TreeBuildConfig(), bucket_size=4)

    def test_zero_particles_rejected(self):
        with pytest.raises(ValueError):
            build_tree(ParticleSet(np.empty((0, 3))))

    def test_custom_tree_type(self):
        """Users can register their own builders (paper §IV-B)."""
        calls = []

        def builder(particles, config):
            calls.append(config.bucket_size)
            from repro.trees.build_binary import build_kd_tree

            return build_kd_tree(particles, config)

        register_tree_type("kd", builder)  # shadow the built-in
        try:
            tree = build_tree(uniform_cube(100, seed=0), tree_type="kd", bucket_size=7)
            assert calls == [7]
            check_tree_invariants(tree)
        finally:
            from repro.trees.build import _BUILDERS

            _BUILDERS.pop("kd", None)

    def test_tight_boxes(self):
        tree = build_tree(
            uniform_cube(400, seed=9),
            TreeBuildConfig(tree_type="oct", bucket_size=8, tight_boxes=True),
        )
        check_tree_invariants(tree)
        # tight root equals the particles' tight bounds
        assert np.allclose(tree.box_lo[0], tree.particles.position.min(axis=0))


def test_tree_enum_str():
    assert str(TreeType.OCT) == "oct"
    assert TreeType("longest") == TreeType.LONGEST_DIM
