"""The application Driver (paper §II-D, Fig 8).

Users subclass :class:`Driver`, override ``configure`` /
``create_particles`` / ``prepare`` / ``traversal`` / ``post_traversal``, and
call :meth:`Driver.run`.  Per iteration the library performs the full
pipeline the paper describes:

1. find Partition splitters via the configured decomposition type and mark
   particles;
2. build the tree (Subtrees are decomposed consistently with it);
3. the leaf-sharing step reconciles the two views (Partitions–Subtrees);
4. user ``prepare`` extracts Data (leaves → root);
5. user ``traversal`` starts visitors through the :class:`Partitions`
   facade (``start_down`` etc.);
6. user ``post_traversal`` does non-traversal physics (collisions, SPH
   updates, integration);
7. optional measured-load re-balancing every ``lb_period`` iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import NULL_TELEMETRY, Telemetry, set_telemetry
from ..particles import ParticleSet, load_particles
from ..trees import Tree, build_tree
from ..decomp import Decomposition, decompose, get_decomposer
from ..decomp.loadbalance import sfc_rebalance, spatial_bisection_rebalance
from .config import Configuration
from .traverser import (
    BucketLoadRecorder,
    InteractionLists,
    Recorder,
    TraversalStats,
    get_traverser,
)
from .visitor import Visitor

__all__ = ["Driver", "Partitions", "IterationReport"]


class Partitions:
    """Facade over the partition set: launches traversals for the buckets
    the partitions own (``partitions().startDown<Visitor>()`` in Fig 8)."""

    def __init__(self, driver: "Driver") -> None:
        self._driver = driver

    @property
    def decomposition(self) -> Decomposition:
        return self._driver.decomposition

    def _targets(self) -> np.ndarray:
        return self._driver.tree.leaf_indices

    def _run(self, traverser_name: str, visitor: Visitor) -> TraversalStats:
        driver = self._driver
        engine = get_traverser(traverser_name)
        recorders = [
            r
            for r in (driver._load_recorder, driver._extra_recorder,
                      driver._attr_recorder, driver._telemetry_lists)
            if r
        ]
        recorder = _MultiRecorder(recorders) if recorders else None
        backend = driver._exec_backend
        if backend is not None:
            stats = backend.run(
                driver.tree, engine, visitor, self._targets(), recorder,
                decomposition=driver.decomposition,
                shared_cache=driver._iteration_cache(),
            )
            driver._absorb_backend_run(backend)
        else:
            stats = engine.traverse(driver.tree, visitor, self._targets(), recorder)
        driver.last_stats.merge(stats)
        return stats

    def start_down(self, visitor: Visitor) -> TraversalStats:
        """Top-down traversal with the configured engine (paper: startDown)."""
        return self._run(self._driver.config.traverser, visitor)

    def start_basic_down(self, visitor: Visitor) -> TraversalStats:
        """Force the classic per-bucket DFS ("BasicTrav")."""
        return self._run("per-bucket", visitor)

    def start_up_and_down(self, visitor: Visitor) -> TraversalStats:
        return self._run("up-and-down", visitor)

    def start_dual(self, visitor: Visitor) -> TraversalStats:
        engine = get_traverser("dual-tree")
        stats = engine.traverse(self._driver.tree, visitor, None, None)
        self._driver.last_stats.merge(stats)
        return stats


class _MultiRecorder(Recorder):
    def __init__(self, recorders: list[Recorder]) -> None:
        self.recorders = recorders

    def on_open(self, tree, sources, targets):
        for r in self.recorders:
            r.on_open(tree, sources, targets)

    def on_node(self, tree, sources, targets):
        for r in self.recorders:
            r.on_node(tree, sources, targets)

    def on_leaf(self, tree, sources, targets):
        for r in self.recorders:
            r.on_leaf(tree, sources, targets)

    def fork(self):
        forks = [r.fork() for r in self.recorders]
        if any(f is None for f in forks):
            return None
        return _MultiRecorder(forks)

    def absorb(self, other: "_MultiRecorder") -> None:
        for mine, theirs in zip(self.recorders, other.recorders):
            mine.absorb(theirs)


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays (and containers of them)
    into plain JSON-serializable Python values."""
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass
class IterationReport:
    """What one iteration did; collected in ``Driver.reports``."""

    iteration: int
    stats: TraversalStats
    partition_loads: np.ndarray
    imbalance: float
    n_split_buckets: int
    n_shared_particles: int
    rebalanced: bool = False
    user: dict[str, Any] = field(default_factory=dict)
    #: fault-injected communication simulation of this iteration's
    #: traversal (set when the driver has a fault plan); on a completed
    #: sim this is ``SimResult.to_dict()``, on retry exhaustion it is the
    #: structured ``IterationFailure.to_dict()`` with ``"failed": True``.
    comm_sim: dict[str, Any] | None = None
    #: real seconds this iteration took (the SLO layer's per-iteration
    #: latency sample)
    wall_time: float | None = None
    #: process-backend worker tree cache outcome for this iteration
    #: (attach_hits / attach_misses / hit_rate), when a process backend ran
    exec_cache: dict[str, Any] | None = None
    #: merged worker-side exec.task latency distribution for this
    #: iteration (a :meth:`Log2Histogram.to_dict`), when a parallel
    #: backend ran with telemetry on
    latency: dict[str, Any] | None = None
    #: how the iteration's backend runs executed: "parallel" when every
    #: run took the clean path, "degraded" when supervision had to
    #: intervene anywhere (retry/redispatch/worker death/quarantine),
    #: "serial"/"serial-fallback" otherwise; None without a backend
    exec_mode: str | None = None
    #: summed :meth:`~repro.exec.SupervisionStats.to_dict` over this
    #: iteration's supervised backend runs, when any were supervised
    supervision: dict[str, int] | None = None
    #: compact :meth:`~repro.obs.AttributionProfile.summary` of this
    #: iteration's traversal attribution (totals, top subtrees, cache-miss
    #: and chunk-imbalance rollups), when attribution is enabled; the full
    #: profile lands in ``Driver.attribution_profiles``
    attribution: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable view (numpy arrays/scalars converted), so
        reports can feed the metrics exporter and be diffed across runs."""
        return {
            "iteration": int(self.iteration),
            "stats": {k: int(v) for k, v in self.stats.as_dict().items()},
            "partition_loads": _jsonable(np.asarray(self.partition_loads)),
            "imbalance": float(self.imbalance),
            "n_split_buckets": int(self.n_split_buckets),
            "n_shared_particles": int(self.n_shared_particles),
            "rebalanced": bool(self.rebalanced),
            "user": _jsonable(self.user),
            "comm_sim": _jsonable(self.comm_sim),
            "wall_time": None if self.wall_time is None else float(self.wall_time),
            "exec_cache": _jsonable(self.exec_cache),
            "latency": _jsonable(self.latency),
            "exec_mode": self.exec_mode,
            "supervision": _jsonable(self.supervision),
            "attribution": _jsonable(self.attribution),
        }


class Driver:
    """Base class for ParaTreeT applications."""

    def __init__(self, config: Configuration | None = None) -> None:
        self.config = config or Configuration()
        self.particles: ParticleSet | None = None
        self.tree: Tree | None = None
        self.decomposition: Decomposition | None = None
        self.last_stats = TraversalStats()
        self.reports: list[IterationReport] = []
        self._partitions = Partitions(self)
        self._load_recorder: BucketLoadRecorder | None = None
        self._extra_recorder: Recorder | None = None
        self._pending_assignment: np.ndarray | None = None
        self.telemetry: Telemetry = NULL_TELEMETRY
        self._telemetry_lists: InteractionLists | None = None
        self.fault_plan = None
        self.critical_path = False
        #: per-node/per-bucket traversal attribution (repro explain)
        self.attribution = False
        self._attr_recorder = None
        #: one AttributionProfile per attributed iteration
        self.attribution_profiles: list[Any] = []
        #: the last iteration's InteractionLists, retained (when recorded)
        #: so ``repro explain`` can replay the traversal through the DES
        self.last_interaction_lists: InteractionLists | None = None
        self._exec_backend = None
        #: per-iteration SharedTreeCache the thread backend's workers warm
        #: concurrently; rebuilt whenever the tree changes
        self._shared_cache = None
        self._shared_cache_tree: Tree | None = None
        #: named PRNG streams whose positions checkpoints capture/restore
        self._rngs: dict[str, np.random.Generator] = {}
        self._ckpt_writer = None
        #: imbalance of the last pre-checkpoint iteration, restored on
        #: resume so the reactive flush check sees the same value the
        #: uninterrupted run would
        self._resumed_imbalance: float | None = None
        #: live status consumers (Dashboard / StatusWriter), fed one
        #: snapshot per completed iteration
        self._status_consumers: list[Any] = []
        #: per-iteration accumulators filled by _absorb_backend_run
        self._iter_latency = None
        self._iter_cache: dict[str, int] | None = None
        self._iter_supervision: dict[str, int] | None = None
        self._iter_exec_mode: str | None = None
        #: exec chunk-task samples (chunk, lane, dur) for the heatmap
        self._iter_tasks: list[dict[str, Any]] = []

    # -- user hooks ---------------------------------------------------------
    def configure(self, config: Configuration) -> None:
        """Mutate ``config`` before the run starts (paper Fig 8)."""

    def create_particles(self, config: Configuration) -> ParticleSet:
        """Provide the particle set when no input file is configured."""
        raise NotImplementedError(
            "set config.input_file or override create_particles()"
        )

    def prepare(self, tree: Tree) -> None:
        """Extract per-node Data after the tree build (leaves -> root)."""

    def traversal(self, iteration: int) -> None:
        """Start visitors via ``self.partitions()``."""
        raise NotImplementedError

    def post_traversal(self, iteration: int) -> None:
        """Non-traversal work: integration, collisions, output, ..."""

    def checkpoint_state(self) -> dict[str, Any]:
        """Application state to include in checkpoints, as a name->array
        dict (accelerations, accumulated logs, scalar clocks as 0-d
        arrays).  The base pipeline state — particles, decomposition
        assignment, PRNG streams — is captured by the library."""
        return {}

    def restore_state(self, state: dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`checkpoint_state`: reinstall application
        state from a checkpoint (called after particles are restored)."""

    # -- library ------------------------------------------------------------
    def partitions(self) -> Partitions:
        return self._partitions

    def set_recorder(self, recorder: Recorder | None) -> None:
        """Attach an observer to every traversal (profiling, memsim)."""
        self._extra_recorder = recorder

    def enable_telemetry(
        self, telemetry: Telemetry | None = None, install_global: bool = True
    ) -> Telemetry:
        """Attach a :class:`~repro.obs.Telemetry` to this driver.

        Every subsequent :meth:`run_iteration` records nested spans for the
        seven pipeline phases and folds traversal, cache, and imbalance
        counters into the metrics registry.  ``install_global`` also makes
        it the process-wide current telemetry so spans inside ``build_tree``,
        ``decompose``, and the traversal engines nest under the phase spans.
        """
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if install_global:
            set_telemetry(self.telemetry if self.telemetry.enabled else None)
        return self.telemetry

    def enable_faults(self, plan) -> None:
        """Attach a fault plan (a :class:`~repro.faults.FaultPlan` or a
        spec string for :func:`~repro.faults.parse_fault_spec`).

        Every subsequent iteration replays its recorded traversal through
        the DES communication model with the plan's faults injected (one
        simulated process per partition) and stores the outcome — simulated
        time, drop/retry/timeout counters, or the structured failure when
        retries are exhausted — in :attr:`IterationReport.comm_sim`.  The
        real traversal results are never perturbed: faults degrade the
        simulated schedule, not the physics.
        """
        from ..faults import parse_fault_spec

        if isinstance(plan, str):
            plan = parse_fault_spec(plan)
        self.fault_plan = plan

    def enable_parallel(self, backend: str = "threads", workers: int | None = None,
                        supervise: Any = None, exec_faults: Any = None,
                        **opts: Any):
        """Run every partition traversal through a ``repro.exec`` backend.

        ``backend`` is ``serial`` | ``threads`` | ``processes``; ``workers``
        defaults to the CPU count.  Results stay bit-identical to serial —
        backends chunk the target buckets along the Partitions decomposition
        and reduce in partition order.  The thread backend additionally
        exercises the :class:`~repro.cache.concurrent.SharedTreeCache`
        wait-free fill path from its workers.  Returns the backend.

        At the driver level supervision **defaults on** (unlike raw
        :func:`~repro.exec.get_backend`, which preserves the original
        block-on-result dispatch): a long-running pipeline should degrade,
        not die, when a worker is OOM-killed.  Pass ``supervise=False`` to
        opt out, or a :class:`~repro.exec.SupervisorConfig` to tune
        deadlines/retries.  ``exec_faults`` (an
        :class:`~repro.faults.ExecFaultPlan` or an ``--exec-faults`` spec
        string) injects real worker faults for chaos testing.
        """
        from ..exec import get_backend

        if isinstance(exec_faults, str):
            from ..faults import parse_exec_fault_spec

            exec_faults = parse_exec_fault_spec(exec_faults)
        if supervise is None:
            supervise = True
        self.disable_parallel()
        self._exec_backend = get_backend(
            backend, workers=workers, supervise=supervise,
            exec_faults=exec_faults, **opts,
        )
        return self._exec_backend

    def disable_parallel(self) -> None:
        """Shut the execution backend down and return to the serial path."""
        if self._exec_backend is not None:
            self._exec_backend.shutdown()
            self._exec_backend = None
        self._shared_cache = None
        self._shared_cache_tree = None

    @property
    def exec_backend(self):
        """The active :class:`~repro.exec.ExecutionBackend`, or None."""
        return self._exec_backend

    def _iteration_cache(self):
        """SharedTreeCache for the thread backend's workers to contend on
        (rebuilt whenever the tree changes); None for other backends."""
        backend = self._exec_backend
        if backend is None or backend.name != "threads" or self.decomposition is None:
            return None
        if self._shared_cache is None or self._shared_cache_tree is not self.tree:
            from ..cache.concurrent import SharedTreeCache

            self._shared_cache = SharedTreeCache(
                self.tree,
                self.decomposition.node_process(),
                process=0,
                nodes_per_request=self.config.nodes_per_request,
                shared_branch_levels=self.config.shared_branch_levels,
                injector=self.fault_plan,
            )
            self._shared_cache_tree = self.tree
        return self._shared_cache

    def enable_dashboard(self, dashboard=None):
        """Attach a live :class:`~repro.obs.Dashboard` (``repro top``),
        repainted with a status snapshot after every iteration.  Returns
        the dashboard."""
        if dashboard is None:
            from ..obs import Dashboard

            dashboard = Dashboard()
        self._status_consumers.append(dashboard)
        return dashboard

    def enable_status(self, path):
        """Append one JSON status snapshot per iteration to ``path`` so a
        separate ``repro top <path> --follow`` can watch this run.  Returns
        the :class:`~repro.obs.StatusWriter`."""
        from ..obs import StatusWriter

        writer = StatusWriter(path)
        self._status_consumers.append(writer)
        return writer

    def _absorb_backend_run(self, backend) -> None:
        """Accumulate one backend.run's latency fork and cache stats into
        the current iteration (an iteration may launch several traversals)."""
        if backend.last_latency is not None:
            if self._iter_latency is None:
                self._iter_latency = backend.last_latency.fork()
            self._iter_latency.merge(backend.last_latency)
        cache = backend.last_cache_stats
        if cache is not None:
            if self._iter_cache is None:
                self._iter_cache = {"attach_hits": 0, "attach_misses": 0}
            self._iter_cache["attach_hits"] += cache["attach_hits"]
            self._iter_cache["attach_misses"] += cache["attach_misses"]
        sup = backend.last_supervision
        if sup is not None:
            if self._iter_supervision is None:
                self._iter_supervision = dict.fromkeys(sup, 0)
            for k, v in sup.items():
                self._iter_supervision[k] = self._iter_supervision.get(k, 0) + v
        # "degraded" is sticky across the iteration's runs
        if self._iter_exec_mode != "degraded":
            self._iter_exec_mode = backend.last_mode
        for t in backend.last_tasks or ():
            self._iter_tasks.append({
                "chunk": int(t.get("chunk", 0)),
                "lane": int(t.get("lane", 0)),
                "dur": float(t.get("end", 0.0)) - float(t.get("start", 0.0)),
            })

    def enable_attribution(self, enabled: bool = True) -> None:
        """Accumulate per-node/per-bucket traversal attribution.

        Every subsequent iteration attaches an
        :class:`~repro.obs.AttributionRecorder` to its traversals — flat
        integer counter arrays indexed by tree-node id (visits, MAC
        accepts, kernel pairs, a deterministic ns cost estimate), merged
        across exec workers in chunk order so the arrays are bit-identical
        for any backend × worker count.  The full
        :class:`~repro.obs.AttributionProfile` (with cache-miss and
        chunk-imbalance context) is appended to
        :attr:`attribution_profiles`; a compact summary lands in
        :attr:`IterationReport.attribution`.  ``repro explain`` builds its
        whole report on this.
        """
        self.attribution = bool(enabled)
        if not enabled:
            self._attr_recorder = None

    def enable_critical_path(self, enabled: bool = True) -> None:
        """Attribute each iteration's simulated communication schedule.

        Every subsequent iteration replays its recorded traversal through
        the DES communication model (fault-free unless a fault plan is also
        attached) with critical-path recording on, and stores the
        :class:`~repro.perf.critical_path.CriticalPathReport` —
        longest-dependency-chain attribution over {compute, cache-miss
        latency, queueing, barrier wait} — under
        ``IterationReport.comm_sim["critical_path"]``.
        """
        self.critical_path = bool(enabled)

    def register_rng(self, name: str, rng: np.random.Generator) -> np.random.Generator:
        """Register a PRNG stream so checkpoints capture (and restores
        reinstall) its exact position — the requirement for bit-identical
        resume of any RNG-dependent physics."""
        self._rngs[name] = rng
        return rng

    def enable_checkpointing(
        self,
        directory,
        every: int = 1,
        keep: int = 2,
        app: str | None = None,
        app_config: dict[str, Any] | None = None,
        buddy=None,
        rank: int = 0,
    ):
        """Write a checkpoint every ``every`` completed iterations into
        ``directory`` (keeping the newest ``keep``).  ``app``/``app_config``
        let ``repro resume`` rebuild the owning Driver; ``buddy`` mirrors
        each blob into a :class:`~repro.resilience.BuddyStore` (in-memory
        double checkpointing).  Returns the writer."""
        from ..resilience import CheckpointWriter

        self._ckpt_writer = CheckpointWriter(
            directory, every=every, keep=keep,
            app=app, app_config=app_config, buddy=buddy, rank=rank,
        )
        return self._ckpt_writer

    def write_final_checkpoint(self) -> str | None:
        """Best-effort checkpoint at the last completed iteration boundary.

        The CLI's SIGTERM/SIGINT path calls this so an interrupted run
        stays resumable.  No-op (returns None) unless checkpointing is
        enabled and the run has materialised particles; a failure to
        write is swallowed — the process is already exiting on a signal.
        """
        if self._ckpt_writer is None or self.particles is None:
            return None
        completed = self.reports[-1].iteration if self.reports else -1
        if completed < 0:
            return None
        try:
            return self._ckpt_writer.write(self, completed)
        except Exception:  # noqa: BLE001 - shutdown path, best effort
            return None

    def run(self, resume_from=None) -> list[IterationReport]:
        """Run the configured iterations; pass ``resume_from`` (a
        checkpoint path or :class:`~repro.resilience.Checkpoint`) to
        continue a checkpointed run bit-identically instead of starting
        from fresh particles."""
        self.configure(self.config)
        cfg = self.config
        start = 0
        if resume_from is not None:
            from ..resilience import restore_run

            start = restore_run(self, resume_from)
        if self.particles is None:
            if cfg.input_file:
                self.particles = load_particles(cfg.input_file)
            else:
                self.particles = self.create_particles(cfg)
        try:
            for it in range(start, cfg.num_iterations):
                self.run_iteration(it)
                if self._ckpt_writer is not None:
                    self._ckpt_writer.maybe_write(self, it)
        except BaseException as exc:
            # black-box record of the final moments (no-op unless the
            # flight recorder was armed with a dump path)
            self.telemetry.flight.maybe_crash_dump(exc)
            raise
        return self.reports

    def run_iteration(self, iteration: int) -> IterationReport:
        """One full decompose/build/traverse/post cycle."""
        cfg = self.config
        assert self.particles is not None
        tel = self.telemetry
        tracer = tel.tracer
        self._iter_latency = None
        self._iter_cache = None
        self._iter_supervision = None
        self._iter_exec_mode = None
        self._iter_tasks = []
        events_before = len(tracer.events)
        t_iter = time.perf_counter()

        with tracer.span("iteration", cat="driver", iteration=iteration):
            # 1. Partition splitters + particle marking.  A flush (paper
            # §II-D-1: "ParaTreeT rebuilds and reassigns partitions during a
            # 'flush' step if load ever becomes irreparably imbalanced")
            # discards any carried-over assignment and re-decomposes from
            # scratch — periodically via ``flush_period`` and reactively when
            # the previous iteration's imbalance exceeded the threshold in
            # ``config.extra["flush_imbalance"]``.
            with tracer.span("splitters", cat="driver.phase"):
                flush = (
                    cfg.flush_period > 0
                    and iteration > 0
                    and iteration % cfg.flush_period == 0
                )
                threshold = cfg.extra.get("flush_imbalance")
                if threshold is not None:
                    # On a resumed run the previous iteration's imbalance
                    # comes from the checkpoint, so the reactive check makes
                    # the same decision the uninterrupted run would.
                    prev = (
                        self.reports[-1].imbalance if self.reports
                        else self._resumed_imbalance
                    )
                    if prev is not None:
                        flush = flush or prev > float(threshold)
                if flush:
                    self._pending_assignment = None
                if self._pending_assignment is not None:
                    part_ids = self._pending_assignment
                    self._pending_assignment = None
                    rebalanced = True
                else:
                    decomposer = get_decomposer(cfg.decomp_type)
                    part_ids = decomposer.assign(self.particles, cfg.num_partitions)
                    rebalanced = False

            # 2. Tree build (particles get permuted into tree order).  part_ids
            # are indexed by the pre-build ordering; recover the build's
            # permutation from orig_index — unique labels, but not necessarily
            # contiguous (merging/removal keeps original labels).
            with tracer.span("tree_build", cat="driver.phase"):
                prev_labels = self.particles.orig_index
                sorter = np.argsort(prev_labels)
                self.tree = build_tree(self.particles, cfg.tree_build_config())
                self.particles = self.tree.particles
                build_order = sorter[
                    np.searchsorted(prev_labels, self.particles.orig_index, sorter=sorter)
                ]  # tree position -> pre-build position
                tree_order_parts = part_ids[build_order]

            # 3. Partitions-Subtrees decomposition + leaf sharing.
            with tracer.span("leaf_sharing", cat="driver.phase"):
                self.decomposition = decompose(
                    self.tree, tree_order_parts, cfg.num_subtrees,
                    n_processes=cfg.num_partitions,
                )

            # 4. Data extraction.
            with tracer.span("prepare", cat="driver.phase"):
                self.prepare(self.tree)

            # 5. Traversal.
            with tracer.span("traversal", cat="driver.phase"):
                self.last_stats = TraversalStats()
                want_lb = cfg.lb_period > 0 and (iteration + 1) % cfg.lb_period == 0
                self._load_recorder = BucketLoadRecorder(self.tree) if want_lb else None
                # Interaction lists feed the telemetry cache statistics and
                # (when a fault plan is attached) the faulted comm replay.
                want_lists = (tel.enabled or self.fault_plan is not None
                              or self.critical_path or self.attribution)
                self._telemetry_lists = InteractionLists() if want_lists else None
                if self.attribution:
                    from ..obs import AttributionRecorder

                    self._attr_recorder = AttributionRecorder(self.tree.n_nodes)
                else:
                    self._attr_recorder = None
                self.traversal(iteration)

            # 6. Post-traversal physics.
            with tracer.span("post_traversal", cat="driver.phase"):
                self.post_traversal(iteration)

            # 7. Measured-load re-balancing.
            with tracer.span("rebalance", cat="driver.phase"):
                loads = self.decomposition.partition_loads()
                if want_lb and self._load_recorder is not None:
                    per_particle = self._load_recorder.per_particle_load(self.tree)
                    if cfg.lb_strategy == "sfc":
                        new_parts = sfc_rebalance(
                            self.particles, per_particle, cfg.num_partitions
                        )
                    else:
                        new_parts = spatial_bisection_rebalance(
                            self.particles, per_particle, cfg.num_partitions
                        )
                    self._pending_assignment = new_parts
                self._load_recorder = None

            # 8. Communication replay (when a fault plan is attached and/or
            # critical-path attribution is requested).
            comm_sim = None
            if self.fault_plan is not None or self.critical_path:
                with tracer.span("comm_sim", cat="driver.phase"):
                    comm_sim = self._simulate_comm(iteration)

            attribution = None
            if self._attr_recorder is not None:
                attribution = self._build_attribution(iteration)

            cache = None
            if self._iter_cache is not None:
                hits = self._iter_cache["attach_hits"]
                misses = self._iter_cache["attach_misses"]
                total = hits + misses
                cache = {
                    "attach_hits": hits, "attach_misses": misses,
                    "hit_rate": hits / total if total else 0.0,
                }
            report = IterationReport(
                iteration=iteration,
                stats=self.last_stats,
                partition_loads=loads,
                imbalance=float(loads.max() / loads.mean()) if loads.sum() else 1.0,
                n_split_buckets=self.decomposition.n_split_buckets,
                n_shared_particles=self.decomposition.n_shared_particles,
                rebalanced=rebalanced,
                comm_sim=comm_sim,
                wall_time=time.perf_counter() - t_iter,
                exec_cache=cache,
                # an empty histogram is reported as count=0 (not dropped),
                # so consumers can say "n=0" instead of guessing
                latency=(self._iter_latency.to_dict()
                         if self._iter_latency is not None else None),
                exec_mode=self._iter_exec_mode,
                supervision=self._iter_supervision,
                attribution=attribution,
            )
            self.reports.append(report)
            if tel.enabled:
                tel.metrics.absorb_iteration_report(report)
                tel.metrics.latency("driver.iteration.latency").observe(report.wall_time)
                self._collect_cache_metrics(iteration)
            self.last_interaction_lists = self._telemetry_lists
            self._telemetry_lists = None
            self._attr_recorder = None
        if self._status_consumers:
            snap = self._status_snapshot(report, events_before)
            for consumer in self._status_consumers:
                consumer.update(snap)
        return report

    def _build_attribution(self, iteration: int) -> dict[str, Any]:
        """Package the iteration's attribution recorder into a full
        :class:`~repro.obs.AttributionProfile` (kept on
        :attr:`attribution_profiles`) and return the compact summary for
        the :class:`IterationReport`."""
        from ..obs import AttributionProfile

        profile = AttributionProfile.from_recorder(
            self._attr_recorder, iteration=iteration, chunks=self._iter_tasks,
        )
        lists = self._telemetry_lists
        if lists is not None and lists.visited and self.decomposition is not None:
            from ..cache.stats import assign_fetch_groups, miss_attribution

            cfg = self.config
            groups = assign_fetch_groups(
                self.tree, self.decomposition,
                nodes_per_request=cfg.nodes_per_request,
                shared_branch_levels=cfg.shared_branch_levels,
            )
            profile.cache = miss_attribution(
                self.tree, lists, self.decomposition, groups,
                n_processes=cfg.num_partitions,
            )
        self.attribution_profiles.append(profile)
        return profile.summary(self.tree)

    def _status_snapshot(self, report: IterationReport,
                         events_before: int) -> dict[str, Any]:
        """One ``repro.status/1`` snapshot for the dashboard/status feed."""
        tel = self.telemetry
        phases: dict[str, float] = {}
        if tel.enabled:
            for ev in tel.tracer.events[events_before:]:
                if ev.get("cat") == "driver.phase":
                    phases[ev["name"]] = phases.get(ev["name"], 0.0) + ev["dur"] / 1e6
        backend = self._exec_backend
        lanes: list[dict[str, Any]] = []
        if backend is not None and backend.last_tasks:
            by_lane: dict[int, dict[str, Any]] = {}
            for t in backend.last_tasks:
                slot = by_lane.setdefault(
                    int(t.get("lane", 0)), {"busy": 0.0, "tasks": 0}
                )
                slot["busy"] += t["end"] - t["start"]
                slot["tasks"] += 1
            lanes = [
                {"lane": lane, **slot} for lane, slot in sorted(by_lane.items())
            ]
        n = len(self.particles) if self.particles is not None else 0
        wall = report.wall_time or 0.0
        latency = report.latency or {}
        return {
            "pipeline": type(self).__name__,
            "iteration": report.iteration,
            "n_particles": n,
            "backend": backend.name if backend is not None else "serial",
            "workers": backend.workers if backend is not None else 1,
            "wall_time": report.wall_time,
            "throughput": n / wall if wall else None,
            "imbalance": report.imbalance,
            "phases": phases,
            "worker_lanes": lanes,
            "cache": report.exec_cache,
            "latency": latency.get("quantiles") or None,
            "latency_count": latency.get("count"),
            "mode": report.exec_mode,
            "degraded": report.exec_mode == "degraded",
            "supervision": report.supervision,
        }

    def _simulate_comm(self, iteration: int) -> dict[str, Any] | None:
        """Replay the iteration's recorded traversal through the DES with
        the attached fault plan (or fault-free, when only critical-path
        attribution was requested).  Completes gracefully either way: a
        finished sim returns its summary (time, fault counters); exhausted
        retries return the structured failure instead of raising — the
        driver's real results are already in hand, only the simulated
        schedule degrades."""
        lists = self._telemetry_lists
        if lists is None or not lists.visited or self.decomposition is None:
            return None
        from ..faults import IterationFailure
        from ..runtime import simulate_traversal, workload_from_traversal

        cfg = self.config
        wl = workload_from_traversal(
            self.tree, self.decomposition, lists,
            nodes_per_request=cfg.nodes_per_request,
            shared_branch_levels=cfg.shared_branch_levels,
        )
        try:
            result = simulate_traversal(
                wl,
                n_processes=cfg.num_partitions,
                faults=self.fault_plan,
                telemetry=self.telemetry if self.telemetry.enabled else None,
                critical_path=self.critical_path,
                collect_trace=self.critical_path,
            )
        except IterationFailure as exc:
            out = exc.to_dict()
            out["failed"] = True
            if self.telemetry.enabled:
                self.telemetry.metrics.absorb_fault_counters(
                    exc.counters, iteration=iteration
                )
                self.telemetry.metrics.counter(
                    "faults.iteration_failures", iteration=iteration
                ).inc()
            return out
        out = result.to_dict()
        out["failed"] = False
        return out

    def _collect_cache_metrics(self, iteration: int) -> None:
        """Software-cache counters for the traversals this iteration ran:
        fetch groups the traversal touched, split by local/remote under the
        iteration's Partitions–Subtrees placement (one simulated process per
        partition), through the WaitFree cache model.  Telemetry-only — the
        seed path never calls this."""
        lists = self._telemetry_lists
        if lists is None or not lists.visited or self.decomposition is None:
            return
        from ..cache.models import WAITFREE
        from ..cache.stats import assign_fetch_groups, fetch_statistics

        cfg = self.config
        with self.telemetry.span("cache_stats", cat="obs"):
            groups = assign_fetch_groups(
                self.tree, self.decomposition,
                nodes_per_request=cfg.nodes_per_request,
                shared_branch_levels=cfg.shared_branch_levels,
            )
            fs = fetch_statistics(
                self.tree, lists, self.decomposition, groups,
                n_processes=cfg.num_partitions, cache_model=WAITFREE,
            )
        self.telemetry.metrics.absorb_fetch_stats(fs, iteration=iteration)
