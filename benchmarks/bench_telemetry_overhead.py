"""Telemetry overhead: the Fig 9 DES configuration with and without the
unified telemetry layer.

The acceptance bar for the observability layer is near-zero cost when
disabled (the seed path runs through the no-op tracer/registry singletons)
and bounded cost when enabled (span bookkeeping + timeline conversion +
counter absorption).  Run ``pytest benchmarks/bench_telemetry_overhead.py
--benchmark-only -s`` to compare against ``bench_fig9_profile.py``.
"""

from repro.bench import build_gravity_workload, print_banner
from repro.cache import WAITFREE
from repro.obs import Telemetry, chrome_trace, use_telemetry
from repro.perf import benchmark as perf_benchmark
from repro.runtime import STAMPEDE2, simulate_traversal

N_PROC = 16
WORKERS = 24


def _workload(quick=False):
    return build_gravity_workload(
        distribution="clustered", n=6_000 if quick else 25_000,
        n_partitions=1024, n_subtrees=1024, shared_branch_levels=4,
    ).workload


@perf_benchmark("obs.telemetry_des", group="obs",
                description="DES run with a live telemetry session + trace export")
def perf_telemetry_des(quick=False):
    workload = _workload(quick)

    def run():
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            simulate_traversal(
                workload, machine=STAMPEDE2, n_processes=N_PROC,
                workers_per_process=WORKERS, cache_model=WAITFREE,
            )
        return {"trace_events": len(chrome_trace(telemetry)["traceEvents"])}

    return run


def test_des_telemetry_disabled(benchmark):
    """Seed configuration: telemetry off, trace collection as in Fig 9."""
    workload = _workload()

    def run():
        return simulate_traversal(
            workload, machine=STAMPEDE2, n_processes=N_PROC,
            workers_per_process=WORKERS, cache_model=WAITFREE,
            collect_trace=True,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.trace is not None


def test_des_telemetry_enabled(benchmark):
    """Same run with a live telemetry session and Chrome-trace conversion."""
    workload = _workload()

    def run():
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            simulate_traversal(
                workload, machine=STAMPEDE2, n_processes=N_PROC,
                workers_per_process=WORKERS, cache_model=WAITFREE,
            )
        return telemetry

    telemetry = benchmark.pedantic(run, rounds=1, iterations=1)
    events = chrome_trace(telemetry)["traceEvents"]
    print_banner("telemetry-enabled DES run")
    print(f"trace events: {len(events):,}, metrics: {len(telemetry.metrics)}")
    assert telemetry.metrics.total("des.events") > 0
    assert any(e["cat"] == "des" for e in events)
