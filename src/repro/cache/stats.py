"""Fetch statistics: turning a real traversal into communication volume.

Given the interaction lists of an actual traversal and a Partitions–Subtrees
placement, compute — per simulated process — how many remote fetch *groups*
are requested, how many request messages each cache model sends, and how
many bytes move.  A fetch group is the unit a single request ships: the
requested node plus ``nodes_per_request`` levels of descendants, i.e. a
depth band of one subtree (paper §II-B-1: "the requested node and a
user-specified number of its descendants ... are serialized and sent").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.traverser import InteractionLists
from ..decomp import Decomposition
from ..trees import Tree
from .models import CacheModel

__all__ = ["FetchGroups", "FetchStats", "assign_fetch_groups",
           "fetch_statistics", "miss_attribution"]

#: Serialized bytes per tree node (key, box, moments — ChaNGa-like ~200B).
NODE_BYTES = 200
#: Serialized bytes per particle in shipped leaves.
PARTICLE_BYTES = 48


@dataclass
class FetchGroups:
    """Dense grouping of tree nodes into fetch units."""

    #: (n_nodes,) group id per node; -1 for the replicated shared branch.
    group_of_node: np.ndarray
    #: (n_groups,) owning subtree of each group.
    group_subtree: np.ndarray
    #: (n_groups,) serialized size of each group in bytes.
    group_bytes: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.group_subtree)


def assign_fetch_groups(
    tree: Tree,
    decomp: Decomposition,
    nodes_per_request: int = 3,
    shared_branch_levels: int = 3,
) -> FetchGroups:
    """Partition all tree nodes into fetch groups.

    Nodes in the shared branch (above every subtree root, or within
    ``shared_branch_levels`` of the global root) are replicated to every
    process up front and never fetched (group -1).
    """
    n = tree.n_nodes
    group_of_node = np.full(n, -1, dtype=np.int64)
    subtree_root_level = {st.index: int(tree.level[st.root]) for st in decomp.subtrees}

    pair_to_group: dict[tuple[int, int], int] = {}
    group_subtree_list: list[int] = []
    node_subtree = decomp.node_subtree
    levels = tree.level
    for i in range(n):
        st = int(node_subtree[i])
        if st < 0 or levels[i] < shared_branch_levels:
            continue
        band = (int(levels[i]) - subtree_root_level[st]) // max(nodes_per_request, 1)
        key = (st, band)
        g = pair_to_group.get(key)
        if g is None:
            g = len(group_subtree_list)
            pair_to_group[key] = g
            group_subtree_list.append(st)
        group_of_node[i] = g

    n_groups = len(group_subtree_list)
    group_bytes = np.zeros(n_groups, dtype=np.float64)
    counts = tree.pend - tree.pstart
    is_leaf = tree.first_child == -1
    for i in range(n):
        g = group_of_node[i]
        if g < 0:
            continue
        group_bytes[g] += NODE_BYTES
        if is_leaf[i]:
            group_bytes[g] += PARTICLE_BYTES * int(counts[i])
    return FetchGroups(
        group_of_node=group_of_node,
        group_subtree=np.asarray(group_subtree_list, dtype=np.int64),
        group_bytes=group_bytes,
    )


@dataclass
class FetchStats:
    """Per-process communication summary for one cache model."""

    n_processes: int
    cache_model: str
    #: unique (process, group) fetches actually needed
    unique_fetches: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: request messages sent (≥ unique under thread-scope / insert-dedupe)
    requests: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: bytes received per process
    bytes_in: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: remote fetch-group references per process (hits + cold misses)
    touches: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def total_requests(self) -> int:
        return int(self.requests.sum())

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_in.sum())

    @property
    def total_hits(self) -> float:
        """Remote references served from the already-filled cache."""
        return float(np.maximum(self.touches - self.unique_fetches, 0.0).sum())

    @property
    def hit_rate(self) -> float:
        t = self.touches.sum()
        return float(self.total_hits / t) if t else 0.0

    @property
    def duplication_factor(self) -> float:
        u = self.unique_fetches.sum()
        return float(self.requests.sum() / u) if u else 1.0


def fetch_statistics(
    tree: Tree,
    lists: InteractionLists,
    decomp: Decomposition,
    groups: FetchGroups,
    n_processes: int,
    cache_model: CacheModel,
    workers_per_process: int = 1,
    inflight_duplication: float = 1.3,
) -> FetchStats:
    """Communication volume per process for one cache model.

    Buckets are assigned to worker threads round-robin within their process
    to estimate thread-scope duplication.  ``inflight_duplication`` models
    insert-time dedupe (the Sequential design): requests issued while a fill
    is queued behind the single writer are not suppressed; 1.0 means no
    duplicates.
    """
    n_parts = len(decomp.partitions)
    leaf_part = _leaf_partition(tree, decomp)
    part_proc = (np.arange(n_parts, dtype=np.int64) * n_processes) // n_parts
    n_subtrees = len(decomp.subtrees)
    st_proc = (np.arange(n_subtrees, dtype=np.int64) * n_processes) // n_subtrees

    # (process, group) and (process, thread, group) visit sets.
    proc_groups: list[set[int]] = [set() for _ in range(n_processes)]
    thread_groups: list[set[tuple[int, int]]] = [set() for _ in range(n_processes)]
    bytes_in = np.zeros(n_processes)
    touches = np.zeros(n_processes)

    bucket_seq: dict[int, int] = {}
    for leaf, visited in lists.visited.items():
        part = int(leaf_part[leaf])
        proc = int(part_proc[part])
        thread = bucket_seq.setdefault(leaf, len(bucket_seq)) % max(workers_per_process, 1)
        for node in visited:
            g = int(groups.group_of_node[node])
            if g < 0:
                continue  # shared branch: replicated
            home = int(st_proc[groups.group_subtree[g]])
            if home == proc:
                continue  # local subtree
            touches[proc] += 1
            if g not in proc_groups[proc]:
                proc_groups[proc].add(g)
                bytes_in[proc] += groups.group_bytes[g]
            thread_groups[proc].add((thread, g))

    unique = np.array([len(s) for s in proc_groups], dtype=np.float64)
    if cache_model.dedupe_scope == "thread":
        requests = np.array([len(s) for s in thread_groups], dtype=np.float64)
        # every duplicate request pulls its own copy of the bytes
        with np.errstate(divide="ignore", invalid="ignore"):
            scale = np.where(unique > 0, requests / np.maximum(unique, 1), 1.0)
        bytes_eff = bytes_in * scale
    elif cache_model.dedupe_time == "insert":
        requests = unique * inflight_duplication
        bytes_eff = bytes_in * inflight_duplication
    else:
        requests = unique
        bytes_eff = bytes_in

    return FetchStats(
        n_processes=n_processes,
        cache_model=cache_model.name,
        unique_fetches=unique,
        requests=requests,
        bytes_in=bytes_eff,
        touches=touches,
    )


def miss_attribution(
    tree: Tree,
    lists: InteractionLists,
    decomp: Decomposition,
    groups: FetchGroups,
    n_processes: int,
) -> dict:
    """Per-partition cache-miss attribution (the ghost-layer guide).

    :func:`fetch_statistics` answers *how much* each process fetches;
    this answers *which partitions* cause it and *from which subtrees* —
    exactly the information a ghost-layer policy needs: a partition whose
    remote touches concentrate on one or two foreign subtrees wants those
    subtrees' boundary bands replicated locally (Burstedde's AMR ghost
    layers; ROADMAP item 3).

    Deterministic by construction: buckets are processed in sorted leaf
    order and everything accumulated is an integer count or an exact sum
    of fixed group sizes.  Returns a JSON-ready dict with one row per
    partition that touched remote data, each with its top foreign
    subtrees, plus a per-node remote-touch array for heat-mapping.
    """
    n_parts = len(decomp.partitions)
    leaf_part = _leaf_partition(tree, decomp)
    part_proc = (np.arange(n_parts, dtype=np.int64) * n_processes) // n_parts
    n_subtrees = len(decomp.subtrees)
    st_proc = (np.arange(n_subtrees, dtype=np.int64) * n_processes) // n_subtrees

    touches = np.zeros(n_parts, dtype=np.int64)
    unique_groups: list[set[int]] = [set() for _ in range(n_parts)]
    bytes_in = np.zeros(n_parts, dtype=np.float64)
    # (partition, foreign subtree) -> remote touches
    part_subtree = np.zeros((n_parts, n_subtrees), dtype=np.int64)
    node_remote = np.zeros(tree.n_nodes, dtype=np.int64)

    for leaf, visited in sorted(lists.visited.items()):
        part = int(leaf_part[leaf])
        proc = int(part_proc[part])
        for node in visited:
            g = int(groups.group_of_node[node])
            if g < 0:
                continue  # shared branch: replicated everywhere
            st = int(groups.group_subtree[g])
            if int(st_proc[st]) == proc:
                continue  # subtree lives on this partition's process
            touches[part] += 1
            part_subtree[part, st] += 1
            node_remote[node] += 1
            if g not in unique_groups[part]:
                unique_groups[part].add(g)
                bytes_in[part] += groups.group_bytes[g]

    rows = []
    for part in range(n_parts):
        if touches[part] == 0:
            continue
        foreign = part_subtree[part]
        top = np.argsort(-foreign, kind="stable")[:3]
        rows.append({
            "partition": part,
            "process": int(part_proc[part]),
            "touches": int(touches[part]),
            "unique_groups": len(unique_groups[part]),
            "bytes": float(bytes_in[part]),
            "top_subtrees": [
                {"subtree": int(st), "touches": int(foreign[st])}
                for st in top if foreign[st] > 0
            ],
        })
    rows.sort(key=lambda r: (-r["touches"], r["partition"]))
    return {
        "n_partitions": n_parts,
        "n_processes": int(n_processes),
        "total_remote_touches": int(touches.sum()),
        "total_unique_groups": int(sum(len(s) for s in unique_groups)),
        "total_bytes": float(bytes_in.sum()),
        "partitions": rows,
        "node_remote_touches": node_remote.tolist(),
    }


def _leaf_partition(tree: Tree, decomp: Decomposition) -> np.ndarray:
    """Majority-owner partition per leaf — delegates to
    :meth:`~repro.decomp.Decomposition.leaf_partition` (the rollup now
    lives with the decomposition, where partition semantics are defined)."""
    return decomp.leaf_partition()
