"""Validators for the observability artifacts CI gates on.

Three document kinds, three checkers (each returns a list of problem
strings — empty means valid):

* :func:`validate_chrome_trace` — structural Trace Event Format checks
  plus the trace-context invariant: every ``exec.task`` event must carry
  an ``args.phase_span`` that names an emitted span (by ``args.span_id``)
  whose interval contains the task, i.e. worker spans nest under their
  pipeline phase even when they crossed a process boundary;
* :func:`validate_slo_report` — the ``repro.slo/1`` schema;
* :func:`validate_flight_dump` — the ``repro.flight/1`` schema;
* :func:`validate_attribution` — the ``repro.attr/1`` schema produced by
  ``repro explain --json``.

``repro obs validate-trace`` / ``validate-slo`` / ``validate-attr`` expose
these on the CLI so the obs-smoke CI job can gate on real artifacts.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .attr import ARRAY_FIELDS, ATTR_SCHEMA
from .flight import FLIGHT_SCHEMA
from .slo import SLO_SCHEMA

__all__ = [
    "validate_chrome_trace",
    "validate_slo_report",
    "validate_flight_dump",
    "validate_attribution",
]

#: slack (µs) for phase-span containment checks: exec.task intervals are
#: measured on worker clocks, so allow a hair of skew at the edges.
_EDGE_SLACK_US = 1e3


def validate_chrome_trace(doc: dict[str, Any],
                          require_exec_tasks: bool = False) -> list[str]:
    """Problems with a Chrome trace-event document (empty list = valid)."""
    problems: list[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]

    spans_by_id: dict[int, dict[str, Any]] = {}
    complete: list[dict[str, Any]] = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            continue
        if ph == "C":
            # counter-track sample (attribution export): needs a name, a
            # timestamp, and a numeric args payload — no duration.
            for field in ("name", "ts", "pid"):
                if field not in ev:
                    problems.append(
                        f"event {i} ({ev.get('name', '?')}): missing {field!r}"
                    )
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(
                    f"event {i} ({ev.get('name', '?')}): counter without args"
                )
            elif not all(isinstance(v, (int, float)) for v in args.values()):
                problems.append(
                    f"event {i} ({ev.get('name', '?')}): non-numeric counter value"
                )
            continue
        if ph != "X":
            problems.append(f"event {i}: unexpected ph={ph!r}")
            continue
        for field in ("name", "ts", "dur", "pid", "tid"):
            if field not in ev:
                problems.append(f"event {i} ({ev.get('name', '?')}): missing {field!r}")
        if ev.get("dur", 0) < 0:
            problems.append(f"event {i} ({ev.get('name', '?')}): negative dur")
        complete.append(ev)
        span_id = (ev.get("args") or {}).get("span_id")
        if span_id is not None:
            spans_by_id[span_id] = ev

    tasks = [e for e in complete if e.get("name") == "exec.task"]
    if require_exec_tasks and not tasks:
        problems.append("no exec.task events in trace")
    for ev in tasks:
        args = ev.get("args") or {}
        phase_span = args.get("phase_span")
        if phase_span is None:
            problems.append(
                f"exec.task (backend={args.get('backend')}, "
                f"chunk={args.get('chunk')}): no phase_span"
            )
            continue
        parent = spans_by_id.get(phase_span)
        if parent is None:
            problems.append(f"exec.task: phase_span {phase_span} matches no span")
            continue
        t0, t1 = ev["ts"], ev["ts"] + ev["dur"]
        p0, p1 = parent["ts"], parent["ts"] + parent["dur"]
        if t0 < p0 - _EDGE_SLACK_US or t1 > p1 + _EDGE_SLACK_US:
            problems.append(
                f"exec.task [{t0:.0f}, {t1:.0f}]µs outside its phase span "
                f"{parent['name']!r} [{p0:.0f}, {p1:.0f}]µs"
            )
    return problems


def validate_slo_report(doc: dict[str, Any]) -> list[str]:
    """Problems with a ``repro.slo/1`` report (empty list = valid)."""
    problems: list[str] = []
    if doc.get("schema") != SLO_SCHEMA:
        problems.append(
            f"bad schema {doc.get('schema')!r} (expected {SLO_SCHEMA!r})"
        )
    spec = doc.get("spec")
    if not isinstance(spec, dict):
        problems.append("missing spec object")
    else:
        for field in ("threshold", "target", "burn_limit", "window"):
            if not isinstance(spec.get(field), (int, float)):
                problems.append(f"spec.{field} missing or non-numeric")
    if not isinstance(doc.get("n_samples"), int):
        problems.append("n_samples missing or non-integer")
    windows = doc.get("windows")
    if not isinstance(windows, list) or not windows:
        problems.append("missing windows array")
    else:
        for w in windows:
            for field in ("name", "n", "bad", "burn_rate", "violated"):
                if field not in w:
                    problems.append(f"window {w.get('name', '?')}: missing {field!r}")
    if not isinstance(doc.get("violated"), bool):
        problems.append("violated missing or non-boolean")
    return problems


def validate_flight_dump(doc: dict[str, Any]) -> list[str]:
    """Problems with a ``repro.flight/1`` dump (empty list = valid)."""
    problems: list[str] = []
    if doc.get("schema") != FLIGHT_SCHEMA:
        problems.append(
            f"bad schema {doc.get('schema')!r} (expected {FLIGHT_SCHEMA!r})"
        )
    events = doc.get("events")
    if not isinstance(events, list):
        return problems + ["missing events array"]
    last_t = None
    for i, ev in enumerate(events):
        if "t" not in ev or "kind" not in ev:
            problems.append(f"event {i}: missing t/kind")
            continue
        if last_t is not None and ev["t"] < last_t:
            problems.append(f"event {i}: timestamps not monotonic")
        last_t = ev["t"]
    return problems


def validate_attribution(doc: dict[str, Any]) -> list[str]:
    """Problems with a ``repro.attr/1`` document (empty list = valid)."""
    problems: list[str] = []
    if doc.get("schema") != ATTR_SCHEMA:
        problems.append(
            f"bad schema {doc.get('schema')!r} (expected {ATTR_SCHEMA!r})"
        )
    n_nodes = doc.get("n_nodes")
    if not isinstance(n_nodes, int) or n_nodes <= 0:
        return problems + ["n_nodes missing or non-positive"]
    arrays = doc.get("arrays")
    if not isinstance(arrays, dict):
        return problems + ["missing arrays object"]
    for name in ARRAY_FIELDS + ("mac_rejects", "cost_ns"):
        vals = arrays.get(name)
        if not isinstance(vals, list):
            problems.append(f"arrays.{name} missing")
            continue
        if len(vals) != n_nodes:
            problems.append(
                f"arrays.{name}: length {len(vals)} != n_nodes {n_nodes}"
            )
            continue
        if any((not isinstance(v, int)) or v < 0 for v in vals):
            problems.append(f"arrays.{name}: non-integer or negative entry")
    totals = doc.get("totals")
    if isinstance(totals, dict):
        for name, total in totals.items():
            vals = arrays.get(name)
            if isinstance(vals, list) and sum(vals) != total:
                problems.append(
                    f"totals.{name}={total} != sum(arrays.{name})={sum(vals)}"
                )
    else:
        problems.append("missing totals object")
    # invariants the recorder semantics guarantee
    visits = arrays.get("visits")
    accepts = arrays.get("mac_accepts")
    rejects = arrays.get("mac_rejects")
    if (isinstance(visits, list) and isinstance(accepts, list)
            and isinstance(rejects, list)
            and len(visits) == len(accepts) == len(rejects) == n_nodes):
        bad = sum(1 for v, a, r in zip(visits, accepts, rejects) if a + r != v)
        if bad:
            problems.append(
                f"{bad} nodes violate mac_accepts + mac_rejects == visits"
            )
    for side_a, side_b in (("pn_pairs", "bucket_pn"), ("pp_pairs", "bucket_pp")):
        a, b = arrays.get(side_a), arrays.get(side_b)
        if isinstance(a, list) and isinstance(b, list) and sum(a) != sum(b):
            problems.append(
                f"source/bucket mismatch: sum({side_a})={sum(a)} != "
                f"sum({side_b})={sum(b)}"
            )
    return problems


def load_json(path: str | Path) -> dict[str, Any]:
    return json.loads(Path(path).read_text())
