"""Turning a real traversal into a DES workload description.

:func:`workload_from_traversal` consumes the interaction lists recorded
during an actual (laptop-scale) traversal and produces, per target bucket,
the compute cost broken down by *fetch group* — the unit of remote data a
single cache request ships.  At simulation time the groups resolve to
local/remote depending on where the owning subtree is placed, so one
workload serves every (process count, cache model) combination of a scaling
sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cache.stats import FetchGroups, assign_fetch_groups
from ..core.traverser import InteractionLists
from ..decomp import Decomposition
from ..trees import Tree

__all__ = ["CostModel", "BucketWork", "WorkloadSpec", "workload_from_traversal"]


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs (seconds) on the reference CPU (SKX @ 2.1 GHz).

    ``c_pp``/``c_pn``/``c_open`` are calibrated so that the Table II
    reference workload (100k uniform particles, θ = 0.7, bucket 16) costs
    ≈ 9.2 s on one simulated SKX core for the transposed style, matching the
    paper's measurement; ``style_multiplier`` encodes Table II's observed
    runtime ratio between the traversal styles (ChaNGa's per-bucket walk
    runs the same interactions ~1.7× slower due to cache behaviour — see
    the memsim reproduction of Table II for the mechanism).
    """

    c_pp: float = 9.0e-8      # per particle-particle interaction
    c_pn: float = 1.1e-7      # per particle-node interaction
    c_open: float = 4.0e-8    # per opening-criterion evaluation
    request_cpu: float = 1.0e-6   # worker time to issue one request
    insert_fixed: float = 2.0e-6  # fixed cost of one cache insertion
    insert_per_byte: float = 2.0e-10  # deserialize + wire per byte
    #: home-side comm-thread time to serialize one response (§III-A: "the
    #: costs of these extra requests and responses" hit the home process
    #: too; calibrated so duplicated-fetch designs stay hidden behind
    #: compute until the communication-bound regime, as in Fig 3)
    serialize_fixed: float = 2.0e-7
    serialize_per_byte: float = 1.0e-10
    style_multiplier: tuple[tuple[str, float], ...] = (
        ("transposed", 1.0),
        ("per-bucket", 1.72),
        ("basic", 1.72),
    )

    def style_factor(self, style: str) -> float:
        for name, f in self.style_multiplier:
            if name == style:
                return f
        raise ValueError(f"no style multiplier for {style!r}")

    def scaled_to(self, clock_ghz: float, reference_ghz: float = 2.1) -> "CostModel":
        """Scale compute costs to another CPU clock (communication terms are
        unchanged)."""
        f = reference_ghz / clock_ghz
        return CostModel(
            c_pp=self.c_pp * f,
            c_pn=self.c_pn * f,
            c_open=self.c_open * f,
            request_cpu=self.request_cpu * f,
            insert_fixed=self.insert_fixed * f,
            insert_per_byte=self.insert_per_byte * f,
            serialize_fixed=self.serialize_fixed * f,
            serialize_per_byte=self.serialize_per_byte * f,
            style_multiplier=self.style_multiplier,
        )


@dataclass
class BucketWork:
    """Compute cost of one target bucket, keyed by fetch group (-1 = the
    replicated shared branch, always local)."""

    leaf: int
    partition: int
    work_by_group: dict[int, float] = field(default_factory=dict)

    @property
    def total_work(self) -> float:
        return sum(self.work_by_group.values())


@dataclass
class WorkloadSpec:
    """Everything the DES needs, independent of process count."""

    buckets: list[BucketWork]
    groups: FetchGroups
    n_partitions: int
    n_subtrees: int

    @property
    def total_work(self) -> float:
        return sum(b.total_work for b in self.buckets)


def workload_from_traversal(
    tree: Tree,
    decomp: Decomposition,
    lists: InteractionLists,
    cost: CostModel | None = None,
    nodes_per_request: int = 3,
    shared_branch_levels: int = 3,
) -> WorkloadSpec:
    """Build the per-bucket, per-group cost breakdown from recorded lists."""
    cost = cost or CostModel()
    groups = assign_fetch_groups(
        tree, decomp, nodes_per_request=nodes_per_request,
        shared_branch_levels=shared_branch_levels,
    )
    counts = tree.pend - tree.pstart
    group_of_node = groups.group_of_node

    # Majority-owner partition per leaf (same rule as cache.stats).
    pp = decomp.particle_partition
    leaf_part: dict[int, int] = {}
    for leaf in tree.leaf_indices:
        s, e = int(tree.pstart[leaf]), int(tree.pend[leaf])
        vals, cnt = np.unique(pp[s:e], return_counts=True)
        leaf_part[int(leaf)] = int(vals[np.argmax(cnt)])

    buckets: list[BucketWork] = []
    for leaf in tree.leaf_indices:
        leaf = int(leaf)
        nb = int(counts[leaf])
        bw = BucketWork(leaf=leaf, partition=leaf_part[leaf])
        wbg = bw.work_by_group
        for node in lists.visited.get(leaf, ()):  # opening tests
            g = int(group_of_node[node])
            wbg[g] = wbg.get(g, 0.0) + cost.c_open
        for node in lists.node_lists.get(leaf, ()):  # centroid approximations
            g = int(group_of_node[node])
            wbg[g] = wbg.get(g, 0.0) + cost.c_pn * nb
        for src in lists.leaf_lists.get(leaf, ()):  # exact leaf interactions
            g = int(group_of_node[src])
            wbg[g] = wbg.get(g, 0.0) + cost.c_pp * nb * int(counts[src])
        buckets.append(bw)

    return WorkloadSpec(
        buckets=buckets,
        groups=groups,
        n_partitions=len(decomp.partitions),
        n_subtrees=len(decomp.subtrees),
    )
