"""Workload construction and the distributed-traversal DES model."""

import numpy as np
import pytest

from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
from repro.cache import PER_THREAD, SEQUENTIAL, SINGLE_WRITER, WAITFREE, XWRITE
from repro.core import InteractionLists, get_traverser
from repro.decomp import SfcDecomposer, decompose
from repro.particles import clustered_clumps
from repro.runtime import (
    BRIDGES2,
    MACHINES,
    STAMPEDE2,
    SUMMIT,
    CostModel,
    simulate_traversal,
    workload_from_traversal,
)
from repro.trees import build_tree


@pytest.fixture(scope="module")
def workload():
    p = clustered_clumps(4000, seed=17)
    tree = build_tree(p, tree_type="oct", bucket_size=16)
    parts = SfcDecomposer().assign(tree.particles, 64)
    dec = decompose(tree, parts, n_subtrees=64)
    visitor = GravityVisitor(tree, compute_centroid_arrays(tree, theta=0.7))
    lists = InteractionLists()
    stats = get_traverser("transposed").traverse(tree, visitor, None, lists)
    wl = workload_from_traversal(tree, dec, lists)
    return wl, stats


class TestMachines:
    def test_table1_characteristics(self):
        """Table I: cores per node, CPU type, clock, comm layer."""
        assert SUMMIT.cores_per_node == 42
        assert SUMMIT.cpu_type == "POWER9" and SUMMIT.clock_ghz == 3.1
        assert SUMMIT.comm_layer == "UCX"
        assert STAMPEDE2.cores_per_node == 48
        assert STAMPEDE2.cpu_type == "Skylake" and STAMPEDE2.clock_ghz == 2.1
        assert STAMPEDE2.comm_layer == "MPI"
        assert BRIDGES2.cores_per_node == 128
        assert BRIDGES2.cpu_type == "EPYC 7742" and BRIDGES2.clock_ghz == 2.25
        assert BRIDGES2.comm_layer == "Infiniband"
        assert set(MACHINES) == {"Summit", "Stampede2", "Bridges2"}

    def test_summit_smt_workers(self):
        """Fig 10: '84 workers per node' on Summit (2-way SMT)."""
        assert SUMMIT.workers_per_node == 84

    def test_with_override(self):
        m = STAMPEDE2.with_(net_latency_s=5e-6)
        assert m.net_latency_s == 5e-6
        assert m.cores_per_node == STAMPEDE2.cores_per_node


class TestCostModel:
    def test_clock_scaling(self):
        base = CostModel()
        fast = base.scaled_to(4.2)  # 2x the reference clock
        assert fast.c_pp == pytest.approx(base.c_pp / 2)

    def test_style_factor(self):
        cm = CostModel()
        assert cm.style_factor("transposed") == 1.0
        assert cm.style_factor("per-bucket") > 1.5
        with pytest.raises(ValueError):
            cm.style_factor("mystery")


class TestWorkload:
    def test_total_work_accounts_all_interactions(self, workload):
        wl, stats = workload
        cm = CostModel()
        expect = (
            stats.opens * cm.c_open
            + stats.pn_interactions * cm.c_pn
            + stats.pp_interactions * cm.c_pp
        )
        assert wl.total_work == pytest.approx(expect, rel=1e-9)

    def test_one_bucket_per_leaf(self, workload):
        wl, _ = workload
        leaves = {b.leaf for b in wl.buckets}
        assert len(leaves) == len(wl.buckets)

    def test_groups_cover_deep_nodes(self, workload):
        wl, _ = workload
        g = wl.groups
        assert g.n_groups > 0
        assert np.all(g.group_bytes > 0)
        assert np.all(g.group_subtree >= 0)


class TestSimulation:
    def test_single_process_time_is_work_over_cores(self, workload):
        wl, _ = workload
        r = simulate_traversal(wl, machine=STAMPEDE2, n_processes=1, workers_per_process=24)
        assert r.requests == 0  # everything local
        assert r.time >= wl.total_work / 24
        assert r.time < 1.5 * wl.total_work / 24

    def test_strong_scaling_reduces_time(self, workload):
        wl, _ = workload
        times = [
            simulate_traversal(wl, n_processes=p, workers_per_process=8).time
            for p in (1, 4, 16)
        ]
        assert times[0] > times[1] > times[2]

    def test_efficiency_degrades_with_scale(self, workload):
        wl, _ = workload
        effs = []
        for p in (1, 16):
            r = simulate_traversal(wl, n_processes=p, workers_per_process=8)
            effs.append(wl.total_work / (p * 8) / r.time)
        assert effs[1] < effs[0] <= 1.01

    def test_fig3_ordering(self, workload):
        """WaitFree is never beaten; XWrite pays lock-wait as soon as
        fetches appear; Sequential tracks WaitFree while threads still have
        work to hide its duplicated communication behind (the full Fig 3
        sweep at bench scale shows the paper's departure points)."""
        wl, _ = workload
        def run(model, p):
            return simulate_traversal(
                wl, n_processes=p, workers_per_process=24, cache_model=model
            ).time

        for p in (8, 32):
            wf, xw, seq = run(WAITFREE, p), run(XWRITE, p), run(SEQUENTIAL, p)
            assert wf <= xw
            assert wf <= seq * 1.05
        # moderate scale: Sequential hides its extra volume (overlap), XWrite
        # cannot hide lock-wait.
        assert run(SEQUENTIAL, 8) < run(XWRITE, 8)

    def test_sequential_sends_more_requests(self, workload):
        wl, _ = workload
        r_wf = simulate_traversal(wl, n_processes=16, workers_per_process=24, cache_model=WAITFREE)
        r_seq = simulate_traversal(wl, n_processes=16, workers_per_process=24, cache_model=SEQUENTIAL)
        assert r_seq.requests > r_wf.requests
        assert r_seq.bytes_moved > r_wf.bytes_moved
        assert r_seq.duplicate_requests > 0
        assert r_wf.duplicate_requests == 0

    def test_per_thread_requests_at_least_sequential(self, workload):
        """PerThread caches never benefit from another thread's fill, so
        they send at least as many requests as Sequential (which shares the
        filled cache process-wide)."""
        wl, _ = workload
        wf = simulate_traversal(wl, n_processes=8, workers_per_process=8, cache_model=WAITFREE)
        a = simulate_traversal(wl, n_processes=8, workers_per_process=8, cache_model=SEQUENTIAL)
        b = simulate_traversal(wl, n_processes=8, workers_per_process=8, cache_model=PER_THREAD)
        assert b.requests >= a.requests > wf.requests

    def test_single_writer_serialises_when_inserts_dominate(self, workload):
        """With expensive insertions, the one designated writer becomes the
        bottleneck while WaitFree spreads fills over all workers (§II-B:
        'parallel cache writing can significantly reduce the length of a
        communication-bound critical path')."""
        wl, _ = workload
        heavy = CostModel(insert_fixed=5e-4)
        wf = simulate_traversal(
            wl, n_processes=32, workers_per_process=24, cache_model=WAITFREE, cost=heavy
        )
        sw = simulate_traversal(
            wl, n_processes=32, workers_per_process=24, cache_model=SINGLE_WRITER, cost=heavy
        )
        assert sw.time > 1.5 * wf.time
        assert sw.requests == wf.requests  # same dedupe, different insert path

    def test_per_bucket_style_slower(self, workload):
        """Fig 10's BasicTrav: same communication, higher compute factor."""
        wl, _ = workload
        t_fast = simulate_traversal(wl, n_processes=4, workers_per_process=8).time
        t_slow = simulate_traversal(
            wl, n_processes=4, workers_per_process=8, traversal_style="per-bucket"
        ).time
        assert t_slow > 1.4 * t_fast

    def test_trace_collection(self, workload):
        wl, _ = workload
        r = simulate_traversal(wl, n_processes=4, workers_per_process=8, collect_trace=True)
        assert r.trace is not None
        labels = set(r.activity)
        assert "local traversal" in labels
        assert "traversal resumption" in labels
        assert "cache insertion" in labels
        assert "cache request" in labels
        # busy time across activities is bounded by cores x makespan
        assert sum(r.activity.values()) <= r.time * 4 * 8 * 1.0001

    def test_determinism(self, workload):
        wl, _ = workload
        a = simulate_traversal(wl, n_processes=8, workers_per_process=8)
        b = simulate_traversal(wl, n_processes=8, workers_per_process=8)
        assert a.time == b.time
        assert a.requests == b.requests

    def test_colocated_processes_cheaper(self, workload):
        """Packing processes onto shared-memory nodes replaces network
        latency with intra-node latency for neighbour traffic (block
        placement keeps neighbours adjacent), so the iteration gets faster
        on a latency-sensitive machine."""
        wl, _ = workload
        slow_net = STAMPEDE2.with_(net_latency_s=2e-4)
        spread = simulate_traversal(
            wl, machine=slow_net, n_processes=16, workers_per_process=8,
            processes_per_node=1,
        )
        packed = simulate_traversal(
            wl, machine=slow_net, n_processes=16, workers_per_process=8,
            processes_per_node=8,
        )
        assert packed.time < spread.time
        assert packed.requests == spread.requests


class TestWorkloadSpecMisc:
    def test_bucket_work_total(self):
        from repro.runtime import BucketWork

        b = BucketWork(leaf=0, partition=0, work_by_group={-1: 1.0, 3: 2.0})
        assert b.total_work == 3.0

    def test_cost_model_serialize_scales_with_clock(self):
        from repro.runtime import CostModel

        fast = CostModel().scaled_to(4.2)
        assert fast.serialize_fixed == pytest.approx(CostModel().serialize_fixed / 2)
        assert fast.insert_per_byte == pytest.approx(CostModel().insert_per_byte / 2)

    def test_sim_result_total_cores(self, workload):
        wl, _ = workload
        r = simulate_traversal(wl, n_processes=3, workers_per_process=7)
        assert r.total_cores == 21
