"""Reusable test harnesses (importable by name, so process-backend workers
can unpickle the visitors defined here)."""
