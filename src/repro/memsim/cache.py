"""A set-associative, LRU, write-allocate cache level."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "CacheLevel"]


@dataclass
class CacheStats:
    load_accesses: int = 0
    load_misses: int = 0
    store_accesses: int = 0
    store_misses: int = 0

    @property
    def accesses(self) -> int:
        return self.load_accesses + self.store_accesses

    @property
    def misses(self) -> int:
        return self.load_misses + self.store_misses

    @property
    def load_miss_rate(self) -> float:
        return self.load_misses / self.load_accesses if self.load_accesses else 0.0

    @property
    def store_miss_rate(self) -> float:
        return self.store_misses / self.store_accesses if self.store_accesses else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.load_accesses + other.load_accesses,
            self.load_misses + other.load_misses,
            self.store_accesses + other.store_accesses,
            self.store_misses + other.store_misses,
        )

    def as_dict(self) -> dict[str, int]:
        """Plain counters, ready for the telemetry metrics registry."""
        return {
            "load_accesses": self.load_accesses,
            "load_misses": self.load_misses,
            "store_accesses": self.store_accesses,
            "store_misses": self.store_misses,
        }


class CacheLevel:
    """One cache level: ``size_bytes`` / ``ways`` / ``line_size`` geometry,
    true LRU replacement, write-allocate (stores behave like loads for
    allocation, counted separately)."""

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64) -> None:
        if size_bytes % (ways * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line ({ways}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.n_sets = size_bytes // (ways * line_size)
        # Per set: list of tags, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def access_line(self, line_addr: int, is_write: bool) -> bool:
        """Access one line (``line_addr`` is already address // line_size).

        Returns True on hit.  Misses allocate (evicting LRU).
        """
        s = self._sets[line_addr % self.n_sets]
        tag = line_addr // self.n_sets
        st = self.stats
        if is_write:
            st.store_accesses += 1
        else:
            st.load_accesses += 1
        try:
            s.remove(tag)
            s.append(tag)
            return True
        except ValueError:
            pass
        if is_write:
            st.store_misses += 1
        else:
            st.load_misses += 1
        s.append(tag)
        if len(s) > self.ways:
            s.pop(0)
        return False

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.n_sets)]
        self.stats = CacheStats()

    def contents(self) -> set[int]:
        """All resident line addresses (for inclusion/sanity tests)."""
        out: set[int] = set()
        for idx, s in enumerate(self._sets):
            for tag in s:
                out.add(tag * self.n_sets + idx)
        return out
