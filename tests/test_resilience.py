"""Checkpoint/restore, buddy replication, crash recovery, and audits.

The resilience contract has four layers, tested in order:

* checkpoints round-trip the full pipeline state field-for-field and
  dtype-for-dtype, and any bit flipped on disk is *detected*, never
  silently restored;
* the in-memory :class:`BuddyStore` mirrors Charm++ double checkpointing:
  a rank's blob survives the loss of that rank;
* a run checkpointed at iteration *k* and resumed is bit-identical to the
  uninterrupted baseline — for gravity and SPH, with real integration;
* DES crashes lose real state (cache lines, in-flight requests) and the
  recovery cost is visible in ``SimResult.recovery``, the trace, and the
  metrics registry.
"""

import zipfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gravity import GravityDriver
from repro.apps.sph import SPHDriver
from repro.core import Configuration, Driver
from repro.particles import (
    ParticleSet,
    SnapshotError,
    clustered_clumps,
    load_particles,
    save_particles,
    uniform_cube,
)
from repro.resilience import (
    BuddyStore,
    Checkpoint,
    CheckpointError,
    CheckpointWriter,
    audit_checkpoints,
    audit_restore,
    audit_state_files,
    checkpoint_from_bytes,
    checkpoint_to_bytes,
    compare_checkpoints,
    latest_checkpoint,
    load_checkpoint,
    restore_run,
    save_checkpoint,
)
from repro.resilience.resume import driver_from_checkpoint


def _gravity_driver(n=400, iterations=3, dt=1e-3, seed=3, **cfg_kwargs):
    p = clustered_clumps(n, seed=seed)

    class Main(GravityDriver):
        def create_particles(self, config):
            return p.copy()

    defaults = dict(num_iterations=iterations, num_partitions=4, num_subtrees=4)
    defaults.update(cfg_kwargs)
    return Main(Configuration(**defaults), theta=0.7, softening=1e-3, dt=dt)


def _sph_driver(n=300, iterations=3, dt=1e-3, seed=5):
    p = uniform_cube(n, seed=seed)

    class Main(SPHDriver):
        def create_particles(self, config):
            return p.copy()

    cfg = Configuration(num_iterations=iterations, num_partitions=4, num_subtrees=4)
    return Main(cfg, k_neighbors=12, dt=dt)


def _fields(driver_or_particles):
    p = getattr(driver_or_particles, "particles", driver_or_particles)
    return {name: np.array(p[name]) for name in p.field_names}


def _assert_fields_equal(a: dict, b: dict):
    assert sorted(a) == sorted(b)
    for name in a:
        assert a[name].dtype == b[name].dtype, name
        assert a[name].shape == b[name].shape, name
        np.testing.assert_array_equal(a[name], b[name], err_msg=name)


class TestCheckpointRoundTrip:
    def make_checkpoint(self):
        rng = np.random.default_rng(0)
        return Checkpoint(
            iteration=7,
            particle_fields={
                "position": rng.standard_normal((50, 3)),
                "velocity": rng.standard_normal((50, 3)).astype(np.float32),
                "mass": np.full(50, 0.02),
                "orig_index": np.arange(50, dtype=np.int64),
                "flags": rng.integers(0, 4, 50).astype(np.int32),
            },
            pending_assignment=rng.integers(0, 4, 50),
            user_state={"accelerations": rng.standard_normal((50, 3))},
            rng_states={"lb": {"state": 123}},
            config=Configuration(num_iterations=9).to_dict(),
            app="gravity",
            app_config={"theta": 0.7},
            fault_spec="crash=0.5@0.1,seed=2",
            last_imbalance=1.25,
        )

    def test_file_round_trip(self, tmp_path):
        ckpt = self.make_checkpoint()
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, ckpt)
        back = load_checkpoint(path)
        assert compare_checkpoints(ckpt, back) == []
        assert back.app == "gravity"
        assert back.app_config == {"theta": 0.7}
        assert back.fault_spec == "crash=0.5@0.1,seed=2"
        assert back.last_imbalance == 1.25
        assert back.config["num_iterations"] == 9

    def test_bytes_round_trip(self):
        ckpt = self.make_checkpoint()
        back = checkpoint_from_bytes(checkpoint_to_bytes(ckpt))
        assert compare_checkpoints(ckpt, back) == []

    def test_particles_reconstruct_dtype_for_dtype(self):
        ckpt = self.make_checkpoint()
        p = checkpoint_from_bytes(checkpoint_to_bytes(ckpt)).particles()
        assert isinstance(p, ParticleSet)
        assert p["velocity"].dtype == np.float32
        assert p["flags"].dtype == np.int32
        np.testing.assert_array_equal(p.position, ckpt.particle_fields["position"])

    def test_corrupt_payload_is_detected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, self.make_checkpoint())
        blob = bytearray(path.read_bytes())
        # Flip bytes late in the archive: data, not the zip directory.
        for off in range(len(blob) // 2, len(blob) // 2 + 8):
            blob[off] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_truncated_archive_is_detected(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, self.make_checkpoint())
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 3])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_entry_reported_as_truncated(self, tmp_path):
        src, dst = tmp_path / "ckpt.npz", tmp_path / "cut.npz"
        save_checkpoint(src, self.make_checkpoint())
        with zipfile.ZipFile(src) as zin, zipfile.ZipFile(dst, "w") as zout:
            for item in zin.infolist():
                if "part_mass" not in item.filename:
                    zout.writestr(item, zin.read(item.filename))
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(dst)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not an npz archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        dtypes=st.lists(
            st.sampled_from([np.float32, np.float64, np.int32, np.int64]),
            min_size=1, max_size=4,
        ),
        iteration=st.integers(min_value=0, max_value=10_000),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_round_trip_property(self, n, dtypes, iteration, seed):
        """Any mix of field dtypes/shapes survives save → restore
        field-for-field, dtype-for-dtype, bit-for-bit."""
        rng = np.random.default_rng(seed)
        fields = {"position": rng.standard_normal((n, 3))}
        for i, dt in enumerate(dtypes):
            if np.issubdtype(dt, np.floating):
                fields[f"f{i}"] = rng.standard_normal(n).astype(dt)
            else:
                fields[f"f{i}"] = rng.integers(-1000, 1000, n).astype(dt)
        ckpt = Checkpoint(iteration=iteration, particle_fields=fields,
                          user_state={"aux": rng.standard_normal((n, 2))})
        back = checkpoint_from_bytes(checkpoint_to_bytes(ckpt))
        assert back.iteration == iteration
        _assert_fields_equal(fields, back.particle_fields)
        _assert_fields_equal(ckpt.user_state, back.user_state)


class TestSnapshotChecksums:
    def make_particles(self, n=64, seed=2):
        return clustered_clumps(n, seed=seed)

    def test_round_trip_verifies(self, tmp_path):
        p = self.make_particles()
        path = tmp_path / "snap.npz"
        save_particles(path, p)
        back = load_particles(path)
        _assert_fields_equal(_fields(p), _fields(back))

    def test_corruption_detected_on_load(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_particles(path, self.make_particles())
        blob = bytearray(path.read_bytes())
        for off in range(len(blob) // 2, len(blob) // 2 + 8):
            blob[off] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_particles(path)

    def test_truncated_snapshot_detected(self, tmp_path):
        path = tmp_path / "snap.npz"
        save_particles(path, self.make_particles())
        whole = path.read_bytes()
        path.write_bytes(whole[: len(whole) // 2])
        with pytest.raises(SnapshotError):
            load_particles(path)

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"\x00" * 100)
        with pytest.raises(SnapshotError):
            load_particles(path)


class TestBuddyStore:
    def test_ring_buddy(self):
        store = BuddyStore(4)
        assert [store.buddy_of(r) for r in range(4)] == [1, 2, 3, 0]

    def test_recover_from_own_copy(self):
        store = BuddyStore(4)
        store.commit(2, b"rank2-state")
        blob, from_buddy = store.recover(2)
        assert blob == b"rank2-state" and not from_buddy

    def test_recover_from_buddy_after_loss(self):
        store = BuddyStore(4)
        store.commit(2, b"rank2-state")
        store.lose_rank(2)
        blob, from_buddy = store.recover(2)
        assert blob == b"rank2-state" and from_buddy

    def test_double_failure_raises(self):
        store = BuddyStore(4)
        store.commit(2, b"rank2-state")
        store.lose_rank(2)
        store.lose_rank(3)  # the buddy holding rank 2's replica
        with pytest.raises(CheckpointError):
            store.recover(2)

    def test_single_rank_ring(self):
        store = BuddyStore(1)
        store.commit(0, b"solo")
        assert store.recover(0) == (b"solo", False)


class TestCheckpointWriter:
    def test_interval_and_rotation(self, tmp_path):
        driver = _gravity_driver(n=200, iterations=6)
        writer = driver.enable_checkpointing(
            tmp_path, every=2, keep=2, app="gravity", app_config={}
        )
        driver.run()
        assert isinstance(writer, CheckpointWriter)
        names = sorted(f.name for f in tmp_path.glob("ckpt_*.npz"))
        # every=2 writes after iterations 1, 3, 5 -> next-iteration stamps
        # 2, 4, 6; keep=2 retains only the newest two.
        assert names == ["ckpt_000004.npz", "ckpt_000006.npz"]
        assert latest_checkpoint(tmp_path).endswith("ckpt_000006.npz")

    def test_writer_commits_to_buddy_store(self, tmp_path):
        store = BuddyStore(2)
        driver = _gravity_driver(n=200, iterations=2)
        driver.enable_checkpointing(tmp_path, every=1, buddy=store, rank=0)
        driver.run()
        assert store.has_checkpoint(0)
        store.lose_rank(0)
        blob, from_buddy = store.recover(0)
        assert from_buddy
        back = checkpoint_from_bytes(blob)
        assert back.iteration == 2


class TestBitIdenticalResume:
    @pytest.mark.parametrize("make", [_gravity_driver, _sph_driver],
                             ids=["gravity", "sph"])
    def test_resume_matches_uninterrupted(self, make, tmp_path):
        baseline = make()
        baseline.run()

        interrupted = make()
        interrupted.enable_checkpointing(tmp_path, every=1)
        interrupted.config.num_iterations = 2
        interrupted.run()

        resumed = make()
        ckpt = load_checkpoint(tmp_path / "ckpt_000002.npz")
        resumed.config.num_iterations = baseline.config.num_iterations
        resumed.run(resume_from=ckpt)

        _assert_fields_equal(_fields(baseline), _fields(resumed))
        np.testing.assert_array_equal(baseline.accelerations, resumed.accelerations)
        assert audit_restore(resumed) == []

    def test_resume_via_driver_from_checkpoint(self, tmp_path):
        baseline = _gravity_driver(n=250, iterations=4)
        baseline.run()

        interrupted = _gravity_driver(n=250, iterations=4)
        writer = interrupted.enable_checkpointing(
            tmp_path, every=1, app="gravity",
            app_config={"theta": 0.7, "softening": 1e-3, "dt": 1e-3},
        )
        interrupted.config.num_iterations = 2
        interrupted.run()
        assert len(writer.written) > 0

        ckpt = load_checkpoint(latest_checkpoint(tmp_path))
        resumed = driver_from_checkpoint(ckpt)
        resumed.config.num_iterations = 4
        resumed.run(resume_from=ckpt)
        _assert_fields_equal(_fields(baseline), _fields(resumed))

    def test_checkpoints_of_resumed_run_match_baseline(self, tmp_path):
        """Cross-checkpoint audit: the checkpoint the resumed run writes at
        iteration k equals the one the uninterrupted run writes there."""
        base_dir, cut_dir, res_dir = (tmp_path / d for d in ("a", "b", "c"))
        baseline = _gravity_driver(iterations=4)
        baseline.enable_checkpointing(base_dir, every=1, keep=10)
        baseline.run()

        interrupted = _gravity_driver(iterations=4)
        interrupted.enable_checkpointing(cut_dir, every=1, keep=10)
        interrupted.config.num_iterations = 2
        interrupted.run()

        resumed = _gravity_driver(iterations=4)
        resumed.enable_checkpointing(res_dir, every=1, keep=10)
        resumed.run(resume_from=cut_dir / "ckpt_000002.npz")

        for name in ("ckpt_000003.npz", "ckpt_000004.npz"):
            assert audit_checkpoints(base_dir / name, res_dir / name) == []
            assert audit_state_files(base_dir / name, res_dir / name) == []

    def test_config_mismatch_rejected(self, tmp_path):
        driver = _gravity_driver(iterations=2)
        driver.enable_checkpointing(tmp_path, every=1)
        driver.run()
        other = _gravity_driver(iterations=2, bucket_size=8)
        with pytest.raises(CheckpointError, match="configuration mismatch"):
            other.run(resume_from=tmp_path / "ckpt_000002.npz")

    def test_iteration_count_is_resumable(self, tmp_path):
        driver = _gravity_driver(iterations=2)
        driver.enable_checkpointing(tmp_path, every=1)
        driver.run()
        longer = _gravity_driver(iterations=7)
        start = restore_run(longer, tmp_path / "ckpt_000002.npz")
        assert start == 2

    def test_registered_rng_streams_round_trip(self, tmp_path):
        class Noisy(Driver):
            def __init__(self, config):
                super().__init__(config)
                self.rng = self.register_rng("noise", np.random.default_rng(11))
                self.draws = []

            def create_particles(self, config):
                return uniform_cube(120, seed=1)

            def traversal(self, iteration):
                self.draws.append(float(self.rng.random()))

        cfg = Configuration(num_iterations=4, num_partitions=4, num_subtrees=4)
        baseline = Noisy(cfg)
        baseline.run()

        interrupted = Noisy(Configuration(num_iterations=2, num_partitions=4,
                                          num_subtrees=4))
        interrupted.enable_checkpointing(tmp_path, every=1)
        interrupted.run()
        resumed = Noisy(cfg)
        resumed.run(resume_from=tmp_path / "ckpt_000002.npz")
        assert resumed.draws == baseline.draws[2:]


class TestLinearBuilderResilience:
    """The vectorised linear octree builder through the resilience stack.

    The builder equivalence proof (tests/test_linear_tree.py) says the two
    builders produce byte-identical trees; these tests pin the downstream
    consequence — checkpoints, resumes, and audits cannot tell the builders
    apart, and a resume may legitimately switch builders."""

    def test_linear_run_resumes_bit_identically(self, tmp_path):
        baseline = _gravity_driver(tree_builder="linear")
        baseline.run()

        interrupted = _gravity_driver(tree_builder="linear")
        interrupted.enable_checkpointing(tmp_path, every=1)
        interrupted.config.num_iterations = 2
        interrupted.run()

        resumed = _gravity_driver(tree_builder="linear")
        resumed.config.num_iterations = baseline.config.num_iterations
        resumed.run(resume_from=load_checkpoint(tmp_path / "ckpt_000002.npz"))

        _assert_fields_equal(_fields(baseline), _fields(resumed))
        np.testing.assert_array_equal(baseline.accelerations, resumed.accelerations)
        assert audit_restore(resumed) == []

    def test_linear_and_recursive_twins_write_identical_checkpoints(self, tmp_path):
        """`repro audit` between a linear run and its recursive twin passes:
        every checkpoint the two runs write carries byte-identical state."""
        lin_dir, rec_dir = tmp_path / "lin", tmp_path / "rec"
        lin = _gravity_driver(tree_builder="linear")
        lin.enable_checkpointing(lin_dir, every=1, keep=10)
        lin.run()

        rec = _gravity_driver(tree_builder="recursive")
        rec.enable_checkpointing(rec_dir, every=1, keep=10)
        rec.run()

        names = sorted(p.name for p in lin_dir.glob("ckpt_*.npz"))
        assert names == sorted(p.name for p in rec_dir.glob("ckpt_*.npz"))
        assert names  # at least one checkpoint written
        for name in names:
            assert audit_checkpoints(lin_dir / name, rec_dir / name) == []
        np.testing.assert_array_equal(lin.accelerations, rec.accelerations)
        _assert_fields_equal(_fields(lin), _fields(rec))

    def test_resume_may_switch_builders(self, tmp_path):
        """tree_builder is a resumable key: a recursive run's checkpoint
        resumed under the linear builder matches the uninterrupted recursive
        baseline bit-for-bit (and vice versa would too, by symmetry)."""
        baseline = _gravity_driver(tree_builder="recursive")
        baseline.run()

        interrupted = _gravity_driver(tree_builder="recursive")
        interrupted.enable_checkpointing(tmp_path, every=1)
        interrupted.config.num_iterations = 2
        interrupted.run()

        resumed = _gravity_driver(tree_builder="linear")
        resumed.config.num_iterations = baseline.config.num_iterations
        resumed.run(resume_from=tmp_path / "ckpt_000002.npz")

        _assert_fields_equal(_fields(baseline), _fields(resumed))
        np.testing.assert_array_equal(baseline.accelerations, resumed.accelerations)
        assert audit_restore(resumed) == []

    def test_tree_builder_round_trips_through_checkpoint(self, tmp_path):
        driver = _gravity_driver(tree_builder="linear", iterations=2)
        driver.enable_checkpointing(
            tmp_path, every=1, app="gravity",
            app_config={"theta": 0.7, "softening": 1e-3, "dt": 1e-3},
        )
        driver.run()

        ckpt = load_checkpoint(latest_checkpoint(tmp_path))
        assert ckpt.config["tree_builder"] == "linear"
        rebuilt = driver_from_checkpoint(ckpt)
        assert rebuilt.config.tree_builder == "linear"
        assert Configuration.from_dict(ckpt.config).tree_builder == "linear"


class TestAudit:
    def test_audit_restore_flags_nonfinite_positions(self):
        driver = _gravity_driver(iterations=1)
        driver.run()
        driver.particles.position[0, 0] = np.nan
        problems = audit_restore(driver)
        assert any("non-finite" in p for p in problems)

    def test_audit_restore_flags_duplicate_labels(self):
        driver = _gravity_driver(iterations=1)
        driver.run()
        driver.particles.orig_index[1] = driver.particles.orig_index[0]
        assert any("unique" in p for p in audit_restore(driver))

    def test_compare_checkpoints_reports_differences(self):
        rt = TestCheckpointRoundTrip()
        a, b = rt.make_checkpoint(), rt.make_checkpoint()
        b.iteration = 8
        b.particle_fields["mass"] = b.particle_fields["mass"] + 1e-9
        problems = compare_checkpoints(a, b)
        assert any("iteration" in p for p in problems)
        assert any("mass" in p for p in problems)

    def test_audit_state_files_on_snapshots(self, tmp_path):
        p = clustered_clumps(80, seed=9)
        pa, pb = tmp_path / "a.npz", tmp_path / "b.npz"
        save_particles(pa, p)
        save_particles(pb, p)
        assert audit_state_files(pa, pb) == []
        q = p.copy()
        q.position[0, 0] += 1e-12
        save_particles(pb, q)
        problems = audit_state_files(pa, pb)
        assert problems and any("position" in prob for prob in problems)
