"""ParaTreeT's core abstractions: Data, Visitor, Traverser, Driver.

These are the paper's §II-A interfaces.  A complete application consists of
a Data class (per-node summaries), a Visitor (pruning + interactions), and a
Driver subclass that configures the run and starts traversals — see
``examples/gravity_simulation.py`` for the 1:1 mirror of the paper's Figs
6-8.
"""

from .config import Configuration
from .data import AdditiveArrayData, Data, accumulate_data, extract_additive
from .driver import Driver, IterationReport, Partitions
from .traverser import (
    BucketLoadRecorder,
    InteractionLists,
    Recorder,
    TraversalStats,
    Traverser,
    get_traverser,
    register_traverser,
)
from .visitor import Visitor

# Importing the engine modules registers the built-in traversers.
from .topdown import PerBucketTraverser, TransposedTraverser
from .batched import BatchedTraverser
from .upanddown import UpAndDownTraverser
from .dualtree import DualTreeTraverser
from .priority import PriorityTraverser
from .util import ranges_to_indices, segment_sums

__all__ = [
    "Configuration",
    "Data",
    "AdditiveArrayData",
    "accumulate_data",
    "extract_additive",
    "Driver",
    "IterationReport",
    "Partitions",
    "Visitor",
    "Traverser",
    "TraversalStats",
    "Recorder",
    "InteractionLists",
    "BucketLoadRecorder",
    "get_traverser",
    "register_traverser",
    "PerBucketTraverser",
    "TransposedTraverser",
    "BatchedTraverser",
    "UpAndDownTraverser",
    "DualTreeTraverser",
    "PriorityTraverser",
    "ranges_to_indices",
    "segment_sums",
]
