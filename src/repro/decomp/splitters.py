"""Decomposition types: assigning particles to Partitions.

Each decomposer implements ``find_splitters`` → ``assign``: the paper's
``findSplitters()`` interface.  Built-ins:

* :class:`SfcDecomposer` — map particles to the Morton space-filling curve
  and slice the curve into ranges uniform in (weighted) particle count
  (Warren & Salmon 1993).  Balances load well but disagrees with non-octree
  trees.
* :class:`OctDecomposer` — breadth-first octree build until there are
  enough nodes, then octree leaves are packed into partitions.  Consistent
  with octrees but can balance poorly for clustered/flat data.
* :class:`LongestDimDecomposer` — recursive orthogonal bisection, always
  cutting the longest dimension at the weighted median (the disk-friendly
  decomposition of paper §IV-B).

Custom decompositions register via :func:`register_decomposer`.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..geometry import MORTON_BITS, bounding_box, morton_keys
from ..particles import ParticleSet

__all__ = [
    "Decomposer",
    "SfcDecomposer",
    "HilbertDecomposer",
    "OctDecomposer",
    "LongestDimDecomposer",
    "register_decomposer",
    "get_decomposer",
]


class Decomposer:
    """Assigns each particle a partition id in ``[0, n_parts)``."""

    name: str = "abstract"

    def assign(
        self,
        particles: ParticleSet,
        n_parts: int,
        weights: np.ndarray | None = None,
    ) -> np.ndarray:
        """Return (N,) int array of partition ids.

        ``weights`` are per-particle load estimates (defaults to uniform);
        decomposers aim for equal summed weight per partition.
        """
        raise NotImplementedError

    @staticmethod
    def _check(n_parts: int) -> None:
        if n_parts < 1:
            raise ValueError(f"n_parts must be >= 1, got {n_parts}")


def _weighted_contiguous_slices(order: np.ndarray, weights: np.ndarray, n_parts: int) -> np.ndarray:
    """Cut an ordering of particles into ``n_parts`` contiguous slices of
    near-equal total weight; returns per-particle part ids."""
    w = weights[order]
    cum = np.cumsum(w)
    total = cum[-1]
    # Boundaries at equal weight quantiles.
    targets = total * (np.arange(1, n_parts) / n_parts)
    cuts = np.searchsorted(cum, targets, side="left")
    part_along_curve = np.zeros(len(order), dtype=np.int64)
    # np.add.at accumulates on repeated cut positions (possible when several
    # quantile boundaries land in one heavy particle's slot).
    np.add.at(part_along_curve, np.minimum(cuts, len(order) - 1), 1)
    part_along_curve = np.cumsum(part_along_curve)
    # A cut landing on index 0 would shift everything; renormalise to [0, n).
    part_along_curve = np.minimum(part_along_curve, n_parts - 1)
    out = np.empty(len(order), dtype=np.int64)
    out[order] = part_along_curve
    return out


class SfcDecomposer(Decomposer):
    """Space-filling-curve decomposition: weighted equal slices of the
    Morton curve."""

    name = "sfc"

    def assign(self, particles, n_parts, weights=None):
        self._check(n_parts)
        n = len(particles)
        weights = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        box = particles.bounding_box().cubified()
        keys = morton_keys(particles.position, box)
        order = np.argsort(keys, kind="stable")
        return _weighted_contiguous_slices(order, weights, n_parts)


class HilbertDecomposer(Decomposer):
    """Hilbert-curve decomposition: like SFC/Morton but along the Hilbert
    curve, whose slices are face-connected and therefore have smaller
    surface area — fewer split buckets and less boundary communication
    (`bench_ablation_sfc_curves.py` quantifies the difference)."""

    name = "hilbert"

    def assign(self, particles, n_parts, weights=None):
        from ..geometry.hilbert import hilbert_keys

        self._check(n_parts)
        n = len(particles)
        weights = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        box = particles.bounding_box().cubified()
        keys = hilbert_keys(particles.position, box)
        order = np.argsort(keys, kind="stable")
        return _weighted_contiguous_slices(order, weights, n_parts)


class OctDecomposer(Decomposer):
    """Octree decomposition: BFS-split the heaviest octree node until there
    are at least ``oversample * n_parts`` leaves, then greedily pack leaves
    (in Morton order) into partitions of near-equal weight.

    The packing keeps each partition a set of whole octree nodes — the
    property that makes this decomposition consistent with octrees but
    unable to split hot spots finely (the imbalance Fig 13 shows on disks).
    """

    name = "oct"

    def __init__(self, oversample: int = 4, max_level: int = MORTON_BITS):
        self.oversample = oversample
        self.max_level = max_level

    def assign(self, particles, n_parts, weights=None):
        self._check(n_parts)
        n = len(particles)
        weights = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        box = particles.bounding_box().cubified()
        keys = morton_keys(particles.position, box)
        order = np.argsort(keys, kind="stable")
        sorted_w = weights[order]
        cum_w = np.concatenate([[0.0], np.cumsum(sorted_w)])
        sorted_keys = keys[order]

        # Heap of candidate octree nodes: (-weight, level, prefix, start, end).
        def node_weight(s: int, e: int) -> float:
            return float(cum_w[e] - cum_w[s])

        heap = [(-node_weight(0, n), 0, 1, 0, n)]  # root: sentinel prefix 1
        target_leaves = max(self.oversample * n_parts, n_parts)
        while len(heap) < target_leaves:
            negw, lvl, prefix, s, e = heapq.heappop(heap)
            if e - s <= 1 or lvl >= self.max_level:
                heapq.heappush(heap, (negw, lvl, prefix, s, e))
                break  # heaviest node cannot be split further
            shift = 3 * (MORTON_BITS - (lvl + 1))
            base = prefix << 3
            sentinel = 1 << (3 * (lvl + 1))
            bounds = np.searchsorted(
                sorted_keys[s:e],
                np.array([((base + c) - sentinel) << shift for c in range(9)], dtype=np.uint64),
            ) + s
            pushed = 0
            for c in range(8):
                cs, ce = int(bounds[c]), int(bounds[c + 1])
                if cs == ce:
                    continue
                heapq.heappush(heap, (-node_weight(cs, ce), lvl + 1, base + c, cs, ce))
                pushed += 1
            if pushed == 0:  # degenerate: all particles identical keys
                heapq.heappush(heap, (negw, lvl, prefix, s, e))
                break

        # Pack Morton-ordered leaves into partitions of near-equal weight.
        leaves = sorted(heap, key=lambda item: item[2] << (3 * (self.max_level - item[1])))
        leaf_w = np.array([-item[0] for item in leaves])
        cum = np.cumsum(leaf_w)
        total = cum[-1] if len(cum) else 1.0
        targets = total * (np.arange(1, n_parts) / n_parts)
        cuts = np.searchsorted(cum, targets, side="left")
        leaf_part = np.zeros(len(leaves), dtype=np.int64)
        np.add.at(leaf_part, np.minimum(cuts, len(leaves) - 1), 1)
        leaf_part = np.minimum(np.cumsum(leaf_part), n_parts - 1)

        out_sorted = np.empty(n, dtype=np.int64)
        for (negw, lvl, prefix, s, e), part in zip(leaves, leaf_part):
            out_sorted[s:e] = part
        out = np.empty(n, dtype=np.int64)
        out[order] = out_sorted
        return out


class LongestDimDecomposer(Decomposer):
    """Orthogonal recursive bisection, always cutting the longest axis at
    the weighted median (paper §IV-B's disk decomposition)."""

    name = "longest"

    def assign(self, particles, n_parts, weights=None):
        self._check(n_parts)
        n = len(particles)
        weights = np.ones(n) if weights is None else np.asarray(weights, dtype=np.float64)
        pos = particles.position
        out = np.zeros(n, dtype=np.int64)
        # Work queue: (particle index array, bounding box, parts to create,
        # first part id).
        queue: list[tuple[np.ndarray, int, int]] = [(np.arange(n), n_parts, 0)]
        while queue:
            idx, parts, base = queue.pop()
            if parts <= 1 or len(idx) == 0:
                out[idx] = base
                continue
            box = bounding_box(pos[idx])
            axis = box.longest_dim
            left_parts = parts // 2
            frac = left_parts / parts
            coords = pos[idx, axis]
            order = np.argsort(coords, kind="stable")
            w = weights[idx][order]
            cum = np.cumsum(w)
            cut = int(np.searchsorted(cum, frac * cum[-1], side="left")) + 1
            cut = min(max(cut, 1), len(idx) - 1)
            queue.append((idx[order[:cut]], left_parts, base))
            queue.append((idx[order[cut:]], parts - left_parts, base + left_parts))
        return out


_DECOMPOSERS: dict[str, type[Decomposer] | Decomposer] = {}


def register_decomposer(name: str, decomposer: type[Decomposer] | Decomposer) -> None:
    """Register a custom decomposition type (paper §IV-B)."""
    _DECOMPOSERS[name] = decomposer


def get_decomposer(name: str) -> Decomposer:
    entry = _DECOMPOSERS.get(name)
    if entry is None:
        raise ValueError(f"unknown decomposition type {name!r}; available: {sorted(_DECOMPOSERS)}")
    return entry() if isinstance(entry, type) else entry


register_decomposer(SfcDecomposer.name, SfcDecomposer)
register_decomposer(HilbertDecomposer.name, HilbertDecomposer)
register_decomposer(OctDecomposer.name, OctDecomposer)
register_decomposer(LongestDimDecomposer.name, LongestDimDecomposer)
