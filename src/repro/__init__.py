"""repro — a Python reproduction of ParaTreeT (IPDPS 2022).

A general framework for spatial tree traversal: trees, the Data / Visitor /
Traverser abstractions, Partitions-Subtrees decomposition, software-cache
models, plus the gravity / SPH / kNN / collision applications and the
simulation substrate used to regenerate the paper's evaluation.

Quick tour::

    from repro.particles import uniform_cube
    from repro.trees import build_tree
    from repro.apps.gravity import compute_gravity

    result = compute_gravity(uniform_cube(10_000, seed=1), theta=0.6)

See README.md for the architecture and DESIGN.md for how the paper's
hardware-scale experiments are reproduced.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "trees",
    "particles",
    "geometry",
    "decomp",
    "cache",
    "runtime",
    "memsim",
    "obs",
    "apps",
    "bench",
]
