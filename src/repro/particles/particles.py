"""Structure-of-arrays particle container.

Following the HPC idiom, particle attributes live in contiguous NumPy arrays
rather than per-particle objects, so kernels vectorise and the working set
stays compact (the property the paper's Table II measures).  All arrays share
one leading dimension N; reordering (e.g. sorting into tree order) permutes
every registered attribute together while keeping ``orig_index`` so results
can be scattered back to input order.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..geometry import Box3, bounding_box

__all__ = ["ParticleSet"]

# Attributes every ParticleSet carries.
_CORE_FIELDS = ("position", "velocity", "mass")


class ParticleSet:
    """N particles stored as a structure of arrays.

    Parameters
    ----------
    position:
        (N, 3) float64 positions.
    velocity:
        optional (N, 3) velocities (zeros if omitted).
    mass:
        optional (N,) masses (ones if omitted).
    **extra:
        additional per-particle arrays, e.g. ``radius`` for collision
        detection or ``density`` for SPH.  Leading dimension must be N.
    """

    def __init__(
        self,
        position: np.ndarray,
        velocity: np.ndarray | None = None,
        mass: np.ndarray | None = None,
        **extra: np.ndarray,
    ) -> None:
        position = np.ascontiguousarray(position, dtype=np.float64)
        if position.ndim != 2 or position.shape[1] != 3:
            raise ValueError(f"position must be (N, 3), got {position.shape}")
        n = len(position)
        if velocity is None:
            velocity = np.zeros((n, 3))
        if mass is None:
            mass = np.ones(n)
        self._fields: dict[str, np.ndarray] = {}
        self._set("position", position)
        self._set("velocity", np.ascontiguousarray(velocity, dtype=np.float64))
        self._set("mass", np.ascontiguousarray(mass, dtype=np.float64))
        self._set("orig_index", np.arange(n, dtype=np.int64))
        for name, arr in extra.items():
            self._set(name, np.ascontiguousarray(arr))

    @classmethod
    def from_arrays(cls, fields: dict[str, np.ndarray]) -> "ParticleSet":
        """Reconstruct a set from a field dict *exactly* — no dtype coercion,
        no synthesized fields.  This is the checkpoint-restore path: the
        constructor normalizes (float64 core fields, fresh ``orig_index``),
        which would break the dtype-for-dtype round-trip guarantee.
        """
        if "position" not in fields:
            raise ValueError("from_arrays requires a 'position' field")
        n = len(fields["position"])
        out = object.__new__(cls)
        out._fields = {}
        for name, arr in fields.items():
            arr = np.ascontiguousarray(arr)
            if arr.shape[:1] != (n,):
                raise ValueError(
                    f"field {name!r} has leading dimension {arr.shape[:1]}, expected ({n},)"
                )
            out._fields[name] = arr
        if "orig_index" not in out._fields:
            out._fields["orig_index"] = np.arange(n, dtype=np.int64)
        return out

    # -- field registry ----------------------------------------------------
    def _set(self, name: str, arr: np.ndarray) -> None:
        arr = np.asarray(arr)
        if arr.shape[:1] != (len(self._fields.get("position", arr)),):
            raise ValueError(
                f"field {name!r} has leading dimension {arr.shape[:1]}, expected ({len(self)},)"
            )
        self._fields[name] = arr

    def add_field(self, name: str, arr: np.ndarray) -> None:
        """Register an extra per-particle attribute (e.g. ``density``)."""
        if name in ("orig_index",):
            raise ValueError(f"field name {name!r} is reserved")
        self._set(name, np.ascontiguousarray(arr))

    def has_field(self, name: str) -> bool:
        return name in self._fields

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(self._fields)

    def __getattr__(self, name: str) -> np.ndarray:
        try:
            return self.__dict__["_fields"][name]
        except KeyError:
            raise AttributeError(f"ParticleSet has no field {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self._fields[name]

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fields["position"])

    def __iter__(self) -> Iterator[dict]:  # pragma: no cover - convenience
        for i in range(len(self)):
            yield {k: v[i] for k, v in self._fields.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = [k for k in self._fields if k not in _CORE_FIELDS + ("orig_index",)]
        return f"ParticleSet(n={len(self)}, extra_fields={extra})"

    # -- geometry ------------------------------------------------------------
    def bounding_box(self, pad_rel: float = 1e-6) -> Box3:
        """Universe box: tight bounds padded by a relative margin so every
        particle is strictly interior (avoids edge cases on the top face)."""
        box = bounding_box(self.position)
        if box.is_empty:
            return box
        pad = pad_rel * max(float(np.max(box.size)), 1.0)
        return box.expanded(pad)

    @property
    def total_mass(self) -> float:
        return float(self._fields["mass"].sum())

    def center_of_mass(self) -> np.ndarray:
        m = self._fields["mass"]
        return (m[:, None] * self._fields["position"]).sum(axis=0) / m.sum()

    # -- reordering / selection ----------------------------------------------
    def permuted(self, order: np.ndarray) -> "ParticleSet":
        """A new set with every field permuted by ``order`` (tree sorting)."""
        order = np.asarray(order)
        out = object.__new__(ParticleSet)
        out._fields = {k: np.ascontiguousarray(v[order]) for k, v in self._fields.items()}
        return out

    def select(self, mask_or_index: np.ndarray) -> "ParticleSet":
        """Subset of particles (mask or fancy index); fields are copied."""
        return self.permuted(
            np.flatnonzero(mask_or_index)
            if np.asarray(mask_or_index).dtype == bool
            else np.asarray(mask_or_index)
        )

    def copy(self) -> "ParticleSet":
        out = object.__new__(ParticleSet)
        out._fields = {k: v.copy() for k, v in self._fields.items()}
        return out

    def scatter_to_input_order(self, values: np.ndarray) -> np.ndarray:
        """Rearrange per-particle ``values`` (aligned with this set's current
        order) back to ascending ``orig_index`` order — i.e. the order the
        particles had before any permutations.  Works for subsets too (a
        ``select``-ed set keeps its parent's labels, so the result follows
        the particles' relative order in the original input)."""
        return np.asarray(values)[np.argsort(self._fields["orig_index"], kind="stable")]

    @staticmethod
    def concatenate(sets: list["ParticleSet"]) -> "ParticleSet":
        """Concatenate particle sets sharing the same field names."""
        if not sets:
            raise ValueError("need at least one ParticleSet")
        names = sets[0].field_names
        for s in sets[1:]:
            if s.field_names != names:
                raise ValueError("field name mismatch in concatenate")
        out = object.__new__(ParticleSet)
        out._fields = {k: np.concatenate([s._fields[k] for s in sets]) for k in names}
        return out
