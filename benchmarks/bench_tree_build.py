"""Linear-octree build and batched-kernel benchmarks (PR 10 acceptance gate).

Four bars:

* ``build.recursive`` — the seed builder: node-at-a-time stack walk.
* ``build.linear_vs_recursive`` — both builders over the same particles;
  the payload records the speedup, and the setup asserts the trees are
  byte-identical before any timing happens (a fast build that builds the
  wrong tree must never produce a green benchmark).
* ``kernels.batched_vs_scalar`` — one gravity traversal through the
  batched whole-frontier engine vs the transposed per-node engine on the
  same tree; payload records both times and the interaction counts that
  prove the visit set matched.
* ``traverse.batched_gravity`` — the batched engine alone, for regression
  tracking of the kernel path itself.

Run ``python -m repro bench run --quick 'build.*' 'kernels.*' -o
BENCH_pr10.json`` and gate with ``repro bench compare``.
"""

import time

import numpy as np

from repro.apps.gravity import compute_centroid_arrays
from repro.apps.gravity.visitor import GravityVisitor
from repro.core import get_traverser
from repro.particles import clustered_clumps
from repro.perf import benchmark as perf_benchmark
from repro.trees import TreeBuildConfig
from repro.trees.build_oct import build_octree
from repro.trees.linear import build_octree_linear


def _particles(quick):
    return clustered_clumps(8_000 if quick else 25_000, seed=17)


@perf_benchmark("build.recursive", group="build",
                description="seed octree builder (node-at-a-time stack walk)")
def bench_build_recursive(quick=False):
    p = _particles(quick)
    config = TreeBuildConfig(tree_type="oct", bucket_size=16)

    def run():
        tree = build_octree(p.copy(), config)
        return {"n_nodes": int(tree.n_nodes)}

    return run


@perf_benchmark("build.linear_vs_recursive", group="build",
                description="vectorised linear builder vs recursive on the "
                            "same particles (trees asserted byte-identical)")
def bench_build_linear_vs_recursive(quick=False):
    p = _particles(quick)
    config = TreeBuildConfig(tree_type="oct", bucket_size=16)

    # Equivalence gate before timing: a wrong tree must fail the bench.
    rec = build_octree(p.copy(), config)
    lin = build_octree_linear(p.copy(), config)
    for name in ("parent", "first_child", "n_children", "pstart", "pend",
                 "level", "key"):
        assert np.array_equal(getattr(rec, name), getattr(lin, name)), name
    assert rec.box_lo.tobytes() == lin.box_lo.tobytes()
    assert rec.box_hi.tobytes() == lin.box_hi.tobytes()

    def run():
        t0 = time.perf_counter()
        build_octree(p.copy(), config)
        t_rec = time.perf_counter() - t0
        t0 = time.perf_counter()
        tree = build_octree_linear(p.copy(), config)
        t_lin = time.perf_counter() - t0
        return {
            "recursive_s": t_rec,
            "linear_s": t_lin,
            "speedup": t_rec / t_lin,
            "n_nodes": int(tree.n_nodes),
        }

    return run


def _gravity_setup(quick):
    p = _particles(quick)
    tree = build_octree_linear(p, TreeBuildConfig(tree_type="oct", bucket_size=16))
    arrays = compute_centroid_arrays(tree, theta=0.7)
    return tree, arrays


@perf_benchmark("kernels.batched_vs_scalar", group="build",
                description="gravity traversal: batched whole-frontier "
                            "kernels vs the per-node transposed engine")
def bench_kernels_batched_vs_scalar(quick=False):
    tree, arrays = _gravity_setup(quick)

    def run():
        t0 = time.perf_counter()
        vt = GravityVisitor(tree, arrays, softening=1e-3)
        st = get_traverser("transposed").traverse(tree, vt)
        t_scalar = time.perf_counter() - t0
        t0 = time.perf_counter()
        vb = GravityVisitor(tree, arrays, softening=1e-3)
        sb = get_traverser("batched").traverse(tree, vb)
        t_batched = time.perf_counter() - t0
        assert st.pp_interactions == sb.pp_interactions
        assert st.pn_interactions == sb.pn_interactions
        assert np.allclose(vt.accel, vb.accel, rtol=1e-12, atol=1e-14)
        return {
            "scalar_s": t_scalar,
            "batched_s": t_batched,
            "speedup": t_scalar / t_batched,
            "pp_interactions": int(st.pp_interactions),
        }

    return run


@perf_benchmark("traverse.batched_gravity", group="build",
                description="batched engine gravity traversal (kernel path "
                            "regression tracking)")
def bench_traverse_batched(quick=False):
    tree, arrays = _gravity_setup(quick)
    engine = get_traverser("batched")

    def run():
        v = GravityVisitor(tree, arrays, softening=1e-3)
        stats = engine.traverse(tree, v)
        return {"pp_interactions": int(stats.pp_interactions)}

    return run
