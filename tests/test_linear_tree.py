"""Equivalence suite for the vectorised linear octree builder (PR 10).

The contract under test is stronger than "same physics": the linear
builder (:func:`repro.trees.linear.build_octree_linear`) must produce a
tree **byte-identical** to the recursive builder's — same node numbering,
same SoA arrays bit-for-bit, same particle permutation.  Everything
downstream (engines, exec backends, checkpoints, the serve layer) then
consumes it unchanged, which is what lets ``tree_builder=linear`` be a
pure build-time switch.

Hypothesis drives random point clouds; the deterministic cases cover the
degenerate geometry the level loop has to get right (duplicates at the
depth cap, single particle, collinear/coplanar sets, extreme coordinate
scales).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.gravity.centroid import compute_centroid_arrays
from repro.particles import ParticleSet, clustered_clumps, uniform_cube
from repro.trees import TreeBuildConfig, build_tree, check_tree_invariants
from repro.trees.build_oct import build_octree
from repro.trees.linear import build_octree_linear

COMMON = dict(deadline=None, suppress_health_check=[HealthCheck.too_slow])

TOPOLOGY_ARRAYS = (
    "parent", "first_child", "n_children", "pstart", "pend", "level", "key",
)
BOX_ARRAYS = ("box_lo", "box_hi")


def particles_from(pos: np.ndarray) -> ParticleSet:
    pos = np.asarray(pos, dtype=np.float64)
    return ParticleSet(position=pos, mass=np.ones(len(pos)))


def assert_trees_identical(rec, lin):
    """Byte-identical trees: topology, boxes, and particle permutation."""
    assert rec.n_nodes == lin.n_nodes
    for name in TOPOLOGY_ARRAYS:
        a, b = getattr(rec, name), getattr(lin, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), f"{name} differs"
    for name in BOX_ARRAYS:
        a, b = getattr(rec, name), getattr(lin, name)
        assert a.tobytes() == b.tobytes(), f"{name} not bit-identical"
    assert np.array_equal(rec.particles.orig_index, lin.particles.orig_index), (
        "particle permutation differs"
    )
    assert rec.particles.position.tobytes() == lin.particles.position.tobytes()


def build_both(particles, **cfg):
    config = TreeBuildConfig(tree_type="oct", **cfg)
    rec = build_octree(particles.copy(), config)
    lin = build_octree_linear(particles.copy(), config)
    return rec, lin


# -- hypothesis: random clouds across bucket sizes ---------------------------

finite_coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def point_clouds(min_n=1, max_n=200):
    return arrays(
        np.float64,
        st.tuples(st.integers(min_n, max_n), st.just(3)),
        elements=finite_coords,
    )


class TestLinearEqualsRecursiveProperty:
    @given(pos=point_clouds(), bucket=st.sampled_from([1, 2, 4, 16, 64]))
    @settings(max_examples=60, **COMMON)
    def test_byte_identical(self, pos, bucket):
        rec, lin = build_both(particles_from(pos), bucket_size=bucket)
        assert_trees_identical(rec, lin)

    @given(pos=point_clouds(min_n=2), bucket=st.sampled_from([1, 4, 16]))
    @settings(max_examples=30, **COMMON)
    def test_invariants_and_leaf_membership(self, pos, bucket):
        rec, lin = build_both(particles_from(pos), bucket_size=bucket)
        check_tree_invariants(lin)
        # Leaf membership: each leaf's particle set (by original index)
        # matches the recursive tree's leaf with the same key.
        rec_leaves = {
            int(rec.key[i]): frozenset(
                rec.particles.orig_index[rec.pstart[i]:rec.pend[i]].tolist()
            )
            for i in rec.leaf_indices
        }
        lin_leaves = {
            int(lin.key[i]): frozenset(
                lin.particles.orig_index[lin.pstart[i]:lin.pend[i]].tolist()
            )
            for i in lin.leaf_indices
        }
        assert rec_leaves == lin_leaves

    @given(
        pos=point_clouds(min_n=2, max_n=120),
        dup_from=st.integers(0, 1_000_000),
        repeats=st.integers(2, 10),
    )
    @settings(max_examples=30, **COMMON)
    def test_duplicate_points(self, pos, dup_from, repeats):
        # Clone one point many times: duplicate Morton keys force the
        # single-child chain down to the depth cap.
        row = pos[dup_from % len(pos)]
        pos = np.concatenate([pos, np.tile(row, (repeats, 1))])
        rec, lin = build_both(particles_from(pos), bucket_size=2, max_depth=12)
        assert_trees_identical(rec, lin)

    @given(pos=point_clouds(min_n=8, max_n=150), depth=st.integers(1, 6))
    @settings(max_examples=20, **COMMON)
    def test_depth_cap(self, pos, depth):
        rec, lin = build_both(particles_from(pos), bucket_size=1, max_depth=depth)
        assert_trees_identical(rec, lin)

    @given(pos=point_clouds(min_n=2, max_n=150))
    @settings(max_examples=20, **COMMON)
    def test_tight_boxes(self, pos):
        rec, lin = build_both(particles_from(pos), bucket_size=4, tight_boxes=True)
        assert_trees_identical(rec, lin)


# -- deterministic degenerate geometry ---------------------------------------

class TestDegenerateInputs:
    def test_single_particle(self):
        rec, lin = build_both(particles_from([[0.3, 0.4, 0.5]]), bucket_size=16)
        assert_trees_identical(rec, lin)
        assert lin.n_nodes == 1

    def test_all_identical_points(self):
        pos = np.tile([[0.25, 0.75, 0.5]], (40, 1))
        rec, lin = build_both(particles_from(pos), bucket_size=4, max_depth=10)
        assert_trees_identical(rec, lin)

    def test_collinear(self):
        t = np.linspace(0.0, 1.0, 97)
        pos = np.stack([t, 2.0 * t, np.full_like(t, 0.5)], axis=1)
        rec, lin = build_both(particles_from(pos), bucket_size=4)
        assert_trees_identical(rec, lin)

    def test_coplanar(self):
        rng = np.random.default_rng(5)
        xy = rng.random((200, 2))
        pos = np.concatenate([xy, np.full((200, 1), 0.125)], axis=1)
        rec, lin = build_both(particles_from(pos), bucket_size=8)
        assert_trees_identical(rec, lin)

    @pytest.mark.parametrize("scale", [1e-9, 1.0, 1e12])
    def test_extreme_coordinate_ranges(self, scale):
        rng = np.random.default_rng(11)
        pos = (rng.random((300, 3)) - 0.5) * scale
        rec, lin = build_both(particles_from(pos), bucket_size=8)
        assert_trees_identical(rec, lin)

    @pytest.mark.parametrize("bucket", [1, 3, 16, 64, 1024])
    def test_bucket_sweep_clustered(self, bucket):
        p = clustered_clumps(2000, seed=2)
        rec, lin = build_both(p, bucket_size=bucket)
        assert_trees_identical(rec, lin)


# -- summaries + dispatch -----------------------------------------------------

class TestSummariesAndDispatch:
    def test_identical_summaries(self):
        p = uniform_cube(3000, seed=9)
        rec, lin = build_both(p, bucket_size=16)
        ar = compute_centroid_arrays(rec, theta=0.7, with_quadrupole=True)
        al = compute_centroid_arrays(lin, theta=0.7, with_quadrupole=True)
        assert ar.centroid.tobytes() == al.centroid.tobytes()
        assert ar.mass.tobytes() == al.mass.tobytes()
        assert ar.open_radius_sq.tobytes() == al.open_radius_sq.tobytes()
        assert ar.quad.tobytes() == al.quad.tobytes()

    def test_build_tree_builder_switch(self):
        p = clustered_clumps(1500, seed=4)
        rec = build_tree(p.copy(), bucket_size=16, builder="recursive")
        lin = build_tree(p.copy(), bucket_size=16, builder="linear")
        assert_trees_identical(rec, lin)

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="builder"):
            TreeBuildConfig(builder="magic")

    def test_binary_trees_ignore_builder(self):
        p = uniform_cube(500, seed=1)
        kd_rec = build_tree(p.copy(), tree_type="kd", bucket_size=8, builder="recursive")
        kd_lin = build_tree(p.copy(), tree_type="kd", bucket_size=8, builder="linear")
        assert np.array_equal(kd_rec.pstart, kd_lin.pstart)
        assert np.array_equal(kd_rec.key, kd_lin.key)
