"""The resident dataset: load once, keep the tree and SoA arrays warm.

A :class:`ResidentState` is built either from a generator spec (kind /
n / seed) or from a PR 4 checkpoint written by a draining server.  The
spec is a plain picklable dict so process-pool workers can rebuild the
same state from their initializer, and it round-trips through the
checkpoint's ``app_config`` so ``repro serve --resume`` reconstructs a
bit-identical tree: the checkpoint stores the tree-ordered particle
arrays byte-exactly (CRC-verified npz), and the deterministic builder
over identical arrays yields an identical tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..particles import (
    ParticleSet,
    clustered_clumps,
    keplerian_disk,
    plummer_sphere,
    uniform_cube,
)
from ..resilience.checkpoint import Checkpoint, load_checkpoint, save_checkpoint
from ..trees import build_tree
from ..trees.node import Tree

GENERATORS = {
    "cube": uniform_cube,
    "clumps": clustered_clumps,
    "plummer": plummer_sphere,
    "disk": keplerian_disk,
}


@dataclass
class ResidentState:
    """Dataset + tree kept warm for the lifetime of the server."""

    spec: dict[str, Any]
    particles: ParticleSet
    tree: Tree

    @property
    def n_particles(self) -> int:
        return len(self.particles)

    def worker_spec(self) -> dict[str, Any]:
        """Picklable recipe a process-pool worker rebuilds this state from."""
        return dict(self.spec)


def build_resident_state(spec: dict[str, Any]) -> ResidentState:
    """Materialise the resident dataset and tree from a spec dict.

    Spec forms::

        {"kind": "clumps", "n": 20000, "seed": 1,
         "tree_type": "oct", "bucket_size": 16}
        {"checkpoint": "ckpts/serve_ckpt.npz", ...tree overrides...}
    """
    spec = dict(spec)
    tree_type = spec.setdefault("tree_type", "oct")
    bucket = int(spec.setdefault("bucket_size", 16))
    builder = spec.setdefault("tree_builder", "recursive")

    if spec.get("checkpoint"):
        ckpt = load_checkpoint(spec["checkpoint"])
        particles = ckpt.particles()
        tree_cfg = ckpt.app_config.get("tree", {})
        tree_type = tree_cfg.get("tree_type", tree_type)
        bucket = int(tree_cfg.get("bucket_size", bucket))
        builder = tree_cfg.get("tree_builder", builder)
        # adopt the checkpoint's recorded generator spec: the resumed
        # server's own drain checkpoint then byte-matches the original
        # (same metadata, same tree-ordered arrays).  Checkpoints from
        # other apps (a gravity run, say) have no recorded dataset —
        # keep the checkpoint path so workers reload it instead.
        recorded = ckpt.app_config.get("dataset")
        if recorded:
            spec = dict(recorded)
        spec["tree_type"], spec["bucket_size"] = tree_type, bucket
        spec["tree_builder"] = builder
    else:
        kind = spec.setdefault("kind", "clumps")
        if kind not in GENERATORS:
            raise ValueError(f"unknown dataset kind {kind!r} "
                             f"(expected one of {', '.join(GENERATORS)})")
        particles = GENERATORS[kind](int(spec.setdefault("n", 20000)),
                                     seed=int(spec.setdefault("seed", 1)))

    tree = build_tree(particles, tree_type=tree_type, bucket_size=bucket,
                      builder=builder)
    return ResidentState(spec=spec, particles=particles, tree=tree)


def checkpoint_resident(state: ResidentState, path: str,
                        extra: dict[str, Any] | None = None) -> str:
    """Write the resident state as a PR 4 checkpoint (drain handoff).

    The particle arrays are saved in tree order, so the restored build
    reproduces the exact same tree and the same query answers.
    """
    ckpt = Checkpoint(
        iteration=0,
        particle_fields={name: state.tree.particles[name]
                         for name in state.tree.particles.field_names},
        config={},
        app="serve",
        app_config={
            "dataset": {k: v for k, v in state.spec.items()
                        if k not in ("tree_type", "bucket_size", "tree_builder")},
            "tree": {"tree_type": state.spec["tree_type"],
                     "bucket_size": state.spec["bucket_size"],
                     "tree_builder": state.spec.get("tree_builder", "recursive")},
            **(extra or {}),
        },
    )
    save_checkpoint(path, ckpt)
    return str(path)
