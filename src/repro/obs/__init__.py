"""Unified telemetry: spans, metrics, and Perfetto/Chrome-trace export.

The paper reads ParaTreeT's behaviour off observability artifacts —
Charm++ *Projections* timelines (Fig 9, Fig 12), cache hit/request counters
(Table II), per-phase profiles.  This package is the reproduction's
equivalent, one layer for the whole pipeline:

* :mod:`repro.obs.span` — nested :class:`Span`/:class:`Tracer` timing with
  real or simulated (DES) clocks;
* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram registry
  that absorbs the scattered stats objects (``TraversalStats``,
  ``FetchStats``, memsim ``CacheStats``, ``IterationReport``);
* :mod:`repro.obs.export` — Chrome trace-event JSON (open in
  https://ui.perfetto.dev), CSV, and console reports;
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade and the
  process-wide current telemetry (a no-op singleton when disabled).

Quick use::

    from repro.obs import Telemetry, use_telemetry, write_chrome_trace

    tel = Telemetry()
    with use_telemetry(tel):
        driver.run()                      # or any instrumented entry point
    write_chrome_trace(tel, "trace.json")

or end-to-end from the CLI::

    python -m repro gravity --n 5000 --trace t.json --metrics m.json
"""

from .span import NULL_TRACER, NullTracer, Span, Tracer
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
)
from .telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    traced,
    use_telemetry,
)
from .export import (
    chrome_trace,
    console_report,
    metrics_dict,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
    "traced",
    "chrome_trace",
    "console_report",
    "metrics_dict",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]
