"""Spheres, used by opening criteria (the gravity MAC) and ball searches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .box import point_box_distance_sq

__all__ = ["Sphere", "spheres_intersect_box"]


@dataclass
class Sphere:
    """A sphere given by ``center`` (3,) and ``radius``."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        self.center = np.asarray(self.center, dtype=np.float64).reshape(3)
        self.radius = float(self.radius)
        if self.radius < 0:
            raise ValueError(f"sphere radius must be >= 0, got {self.radius}")

    @property
    def radius_sq(self) -> float:
        return self.radius * self.radius

    def contains(self, point) -> bool:
        d = np.asarray(point, dtype=np.float64) - self.center
        return bool(np.dot(d, d) <= self.radius_sq)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        d = np.asarray(points, dtype=np.float64) - self.center
        return np.einsum("...i,...i->...", d, d) <= self.radius_sq

    def intersects_box(self, lo, hi) -> bool:
        d = np.maximum(np.maximum(np.asarray(lo) - self.center, self.center - np.asarray(hi)), 0.0)
        return bool(np.dot(d, d) <= self.radius_sq)

    def intersects_sphere(self, other: "Sphere") -> bool:
        d = other.center - self.center
        r = self.radius + other.radius
        return bool(np.dot(d, d) <= r * r)


def spheres_intersect_box(
    centers: np.ndarray, radii_sq: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Do M spheres intersect a single box? -> (M,) bool.

    Used by the transposed traversal to test one target box against the
    bounding spheres of a batch of source nodes.
    """
    centers = np.asarray(centers)
    d = np.maximum(np.maximum(np.asarray(lo) - centers, centers - np.asarray(hi)), 0.0)
    return np.einsum("...i,...i->...", d, d) <= np.asarray(radii_sq)


def sphere_box_distance_sq(center: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Squared distance from sphere center(s) to box(es); broadcasting."""
    return point_box_distance_sq(lo, hi, center)
