"""Best-first ray traversal: geometry kernels and the tracer.

Rays are external query objects (not tree leaves), so this module carries
its own priority-driven walk — exactly the "implement your own traversal
type with the Traverser interface" path the paper describes — reusing the
tree's boxes for slab tests and its buckets for exact sphere hits.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ...trees import Tree

__all__ = ["RayHits", "ray_box_entry", "ray_sphere_hit", "trace_rays", "brute_force_trace"]


def ray_box_entry(
    origin: np.ndarray, inv_dir: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> float:
    """Entry parameter t >= 0 where the ray enters the box, or +inf.

    Standard slab test; ``inv_dir`` is the precomputed 1/direction with
    zeros mapped to +/-inf (numpy handles the resulting infinities
    correctly for axis-parallel rays).
    """
    t1 = (lo - origin) * inv_dir
    t2 = (hi - origin) * inv_dir
    tmin = np.minimum(t1, t2)
    tmax = np.maximum(t1, t2)
    # NaNs appear when origin sits exactly on a slab of an axis-parallel
    # ray (0 * inf); treat those axes as unconstrained.
    t_enter = np.nanmax(np.where(np.isnan(tmin), -np.inf, tmin))
    t_exit = np.nanmin(np.where(np.isnan(tmax), np.inf, tmax))
    if t_exit < max(t_enter, 0.0):
        return np.inf
    return max(t_enter, 0.0)


def ray_sphere_hit(
    origin: np.ndarray,
    direction: np.ndarray,
    centers: np.ndarray,
    radii: np.ndarray,
) -> np.ndarray:
    """Smallest t >= 0 where the (unit-direction) ray hits each sphere,
    +inf for misses -> (M,)."""
    oc = np.atleast_2d(centers) - origin
    b = oc @ direction                      # projection of centre on ray
    c = np.einsum("ij,ij->i", oc, oc) - np.asarray(radii) ** 2
    disc = b * b - c
    hit = disc >= 0
    sq = np.sqrt(np.where(hit, disc, 0.0))
    t0 = b - sq
    t1 = b + sq
    # nearest non-negative root
    t = np.where(t0 >= 0, t0, np.where(t1 >= 0, t1, np.inf))
    return np.where(hit, t, np.inf)


@dataclass
class RayHits:
    """First-hit results, aligned with the input rays."""

    hit_index: np.ndarray  # (R,) particle index in tree order, -1 for miss
    t_hit: np.ndarray      # (R,) ray parameter, +inf for miss
    nodes_visited: int
    spheres_tested: int


def trace_rays(
    tree: Tree,
    origins: np.ndarray,
    directions: np.ndarray,
    radius_field: str = "radius",
    radii: np.ndarray | None = None,
) -> RayHits:
    """First hit of each ray against the particle spheres.

    ``radii`` defaults to the tree particles' ``radius_field``.  Directions
    are normalised internally, so ``t_hit`` is a euclidean distance.
    Traversal is best-first by box entry distance with pruning at the
    current closest hit, so most rays touch a handful of nodes.
    """
    origins = np.atleast_2d(np.asarray(origins, dtype=np.float64))
    directions = np.atleast_2d(np.asarray(directions, dtype=np.float64))
    if origins.shape != directions.shape:
        raise ValueError("origins and directions must have matching shapes")
    if radii is None:
        radii = tree.particles[radius_field]
    radii = np.asarray(radii, dtype=np.float64)

    n_rays = len(origins)
    hit_index = np.full(n_rays, -1, dtype=np.int64)
    t_hit = np.full(n_rays, np.inf)
    nodes_visited = 0
    spheres_tested = 0

    first_child = tree.first_child
    n_children = tree.n_children
    pos = tree.particles.position
    # Boxes bound particle *centres*; a finite sphere can poke out, so the
    # slab test runs against boxes inflated by the subtree's largest radius.
    node_rmax = np.array(
        [float(radii[tree.pstart[i]:tree.pend[i]].max()) for i in range(tree.n_nodes)]
    )
    box_lo = tree.box_lo - node_rmax[:, None]
    box_hi = tree.box_hi + node_rmax[:, None]

    norms = np.linalg.norm(directions, axis=1)
    if np.any(norms == 0):
        raise ValueError("ray directions must be non-zero")
    unit_dirs = directions / norms[:, None]

    for r in range(n_rays):
        o = origins[r]
        d = unit_dirs[r]
        with np.errstate(divide="ignore"):
            inv = 1.0 / d
        t0 = ray_box_entry(o, inv, box_lo[0], box_hi[0])
        if not np.isfinite(t0):
            continue
        heap: list[tuple[float, int]] = [(t0, 0)]
        best = np.inf
        best_idx = -1
        while heap:
            t_enter, node = heapq.heappop(heap)
            if t_enter >= best:
                break  # everything still queued starts beyond the hit
            nodes_visited += 1
            fc = first_child[node]
            if fc == -1:
                s, e = int(tree.pstart[node]), int(tree.pend[node])
                ts = ray_sphere_hit(o, d, pos[s:e], radii[s:e])
                spheres_tested += e - s
                local = int(np.argmin(ts))
                if ts[local] < best:
                    best = float(ts[local])
                    best_idx = s + local
                continue
            for c in range(fc, fc + int(n_children[node])):
                tc = ray_box_entry(o, inv, box_lo[c], box_hi[c])
                if tc < best:
                    heapq.heappush(heap, (tc, c))
        hit_index[r] = best_idx
        t_hit[r] = best
    return RayHits(
        hit_index=hit_index,
        t_hit=t_hit,
        nodes_visited=nodes_visited,
        spheres_tested=spheres_tested,
    )


def brute_force_trace(
    positions: np.ndarray,
    radii: np.ndarray,
    origins: np.ndarray,
    directions: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference tracer testing every sphere for every ray."""
    origins = np.atleast_2d(origins)
    directions = np.atleast_2d(directions)
    directions = directions / np.linalg.norm(directions, axis=1)[:, None]
    hit = np.full(len(origins), -1, dtype=np.int64)
    t_hit = np.full(len(origins), np.inf)
    for r in range(len(origins)):
        ts = ray_sphere_hit(origins[r], directions[r], positions, radii)
        i = int(np.argmin(ts))
        if np.isfinite(ts[i]):
            hit[r] = i
            t_hit[r] = ts[i]
    return hit, t_hit
