"""Priority-driven traversal and the ray-tracing app."""

import numpy as np
import pytest

from repro.apps.knn import brute_force_knn, knn_search
from repro.apps.ray import (
    brute_force_trace,
    ray_box_entry,
    ray_sphere_hit,
    trace_rays,
)
from repro.core import Visitor, get_traverser
from repro.particles import ParticleSet, clustered_clumps, uniform_cube
from repro.trees import build_tree


class TestPriorityTraverser:
    def test_registered(self):
        assert get_traverser("priority") is not None

    def test_requires_priority_method(self):
        tree = build_tree(uniform_cube(100, seed=0), tree_type="kd", bucket_size=8)

        class NoPriority(Visitor):
            def open(self, s, t):
                return True

        with pytest.raises(TypeError, match="priority"):
            get_traverser("priority").traverse(tree, NoPriority())

    def test_best_first_knn_exact(self):
        tree = build_tree(clustered_clumps(800, seed=1), tree_type="kd", bucket_size=8)
        res = knn_search(tree, k=6, traverser="priority")
        bf_d, _ = brute_force_knn(tree.particles.position, 6)
        assert np.allclose(res.dist_sq, bf_d)

    def test_expansion_order_is_by_priority(self):
        """Nodes must be expanded in non-decreasing priority when the
        priority function is static."""
        tree = build_tree(uniform_cube(300, seed=2), tree_type="kd", bucket_size=8)
        order: list[float] = []

        class Probe(Visitor):
            def priority(self, tree, source, target):
                return float(tree.level[source])

            def open(self, source, target):
                order.append(float(source.level))
                return True

            def leaf(self, source, target):
                pass

            def node(self, source, target):
                pass

        get_traverser("priority").traverse(tree, Probe(), tree.leaf_indices[:1])
        assert order == sorted(order)

    def test_done_short_circuits(self):
        tree = build_tree(uniform_cube(300, seed=3), tree_type="kd", bucket_size=8)

        class StopImmediately(Visitor):
            opens = 0

            def priority(self, tree, source, target):
                return 0.0

            def open(self, source, target):
                StopImmediately.opens += 1
                return True

            def leaf(self, source, target):
                pass

            def done(self, target):
                return StopImmediately.opens >= 3

        stats = get_traverser("priority").traverse(
            tree, StopImmediately(), tree.leaf_indices[:1]
        )
        assert stats.nodes_visited <= 3


class TestRayGeometry:
    def test_box_entry_through(self):
        inv = 1.0 / np.array([1.0, 1e-30, 1e-30])
        t = ray_box_entry(np.array([-2.0, 0.5, 0.5]), inv, np.zeros(3), np.ones(3))
        assert t == pytest.approx(2.0)

    def test_box_entry_miss(self):
        with np.errstate(divide="ignore"):
            inv = 1.0 / np.array([1.0, 0.0, 0.0])
        t = ray_box_entry(np.array([-2.0, 5.0, 0.5]), inv, np.zeros(3), np.ones(3))
        assert t == np.inf

    def test_box_entry_inside_starts_at_zero(self):
        with np.errstate(divide="ignore"):
            inv = 1.0 / np.array([1.0, 0.0, 0.0])
        t = ray_box_entry(np.array([0.5, 0.5, 0.5]), inv, np.zeros(3), np.ones(3))
        assert t == 0.0

    def test_sphere_hit_head_on(self):
        t = ray_sphere_hit(
            np.zeros(3), np.array([1.0, 0, 0]),
            np.array([[5.0, 0, 0]]), np.array([1.0]),
        )
        assert t[0] == pytest.approx(4.0)

    def test_sphere_behind_ray_misses(self):
        t = ray_sphere_hit(
            np.zeros(3), np.array([1.0, 0, 0]),
            np.array([[-5.0, 0, 0]]), np.array([1.0]),
        )
        assert t[0] == np.inf

    def test_origin_inside_sphere(self):
        t = ray_sphere_hit(
            np.zeros(3), np.array([1.0, 0, 0]),
            np.array([[0.5, 0, 0]]), np.array([1.0]),
        )
        assert t[0] == pytest.approx(1.5)  # exit point


class TestTraceRays:
    @pytest.fixture(scope="class")
    def scene(self):
        rng = np.random.default_rng(7)
        p = uniform_cube(2000, seed=4)
        p.add_field("radius", rng.uniform(0.003, 0.012, 2000))
        tree = build_tree(p, tree_type="oct", bucket_size=16)
        origins = rng.uniform(-2.0, -1.5, (120, 3))
        dirs = rng.uniform(-0.4, 0.4, (120, 3)) - origins
        return tree, origins, dirs

    def test_matches_brute_force(self, scene):
        tree, origins, dirs = scene
        res = trace_rays(tree, origins, dirs)
        bf_hit, bf_t = brute_force_trace(
            tree.particles.position, tree.particles.radius, origins, dirs
        )
        assert np.array_equal(res.hit_index, bf_hit)
        finite = np.isfinite(bf_t)
        assert np.allclose(res.t_hit[finite], bf_t[finite])
        assert finite.sum() > 10  # the scene actually produces hits

    def test_pruning_is_effective(self, scene):
        tree, origins, dirs = scene
        res = trace_rays(tree, origins, dirs)
        assert res.spheres_tested < 0.2 * len(origins) * tree.n_particles

    def test_miss_everything(self, scene):
        tree, _, _ = scene
        res = trace_rays(tree, np.array([[10.0, 10, 10]]), np.array([[1.0, 0, 0]]))
        assert res.hit_index[0] == -1
        assert res.t_hit[0] == np.inf

    def test_zero_direction_rejected(self, scene):
        tree, _, _ = scene
        with pytest.raises(ValueError):
            trace_rays(tree, np.zeros((1, 3)), np.zeros((1, 3)))

    def test_explicit_radii(self):
        p = ParticleSet(np.array([[1.0, 0.0, 0.0]]))
        tree = build_tree(p, tree_type="kd", bucket_size=1)
        res = trace_rays(
            tree, np.zeros((1, 3)), np.array([[1.0, 0, 0]]), radii=np.array([0.25])
        )
        assert res.hit_index[0] == 0
        assert res.t_hit[0] == pytest.approx(0.75)
