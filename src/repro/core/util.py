"""Small vectorised helpers shared by the traversal engines."""

from __future__ import annotations

import numpy as np

__all__ = ["ranges_to_indices", "segment_sums", "scatter_add_rows"]


def ranges_to_indices(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, e) for s, e in zip(starts, ends)]`` without a
    Python loop.

    This is the gather step of the transposed traversal: turning a batch of
    bucket particle ranges into one flat index array.
    """
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    counts = ends - starts
    if np.any(counts < 0):
        raise ValueError("ranges_to_indices: ends must be >= starts")
    # Drop empty ranges up front; they contribute nothing.
    nonempty = counts > 0
    if not np.all(nonempty):
        starts, ends, counts = starts[nonempty], ends[nonempty], counts[nonempty]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Steps are +1 everywhere except at range boundaries, where the value
    # jumps from ends[j]-1 to starts[j+1].
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(counts)[:-1]
    out[boundaries] = starts[1:] - (ends[:-1] - 1)
    return np.cumsum(out)


def segment_sums(values: np.ndarray, starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Sum ``values`` over each half-open range ``[starts, ends)``.

    Uses an exclusive prefix sum, so the cost is O(N + M) regardless of how
    ranges overlap — exactly how tree-node moments are extracted from the
    tree-ordered particle arrays.
    """
    values = np.asarray(values, dtype=np.float64)
    cum = np.concatenate([np.zeros((1,) + values.shape[1:]), np.cumsum(values, axis=0)])
    return cum[np.asarray(ends)] - cum[np.asarray(starts)]


def scatter_add_rows(target: np.ndarray, indices: np.ndarray, values: np.ndarray) -> None:
    """``target[indices] += values`` with correct accumulation on repeats."""
    np.add.at(target, indices, values)
