"""Friends-of-Friends via tree ball searches + union-find."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...particles import ParticleSet
from ...trees import Tree, build_tree
from ..knn.balls import ball_search

__all__ = ["UnionFind", "FoFResult", "friends_of_friends", "brute_force_fof"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:  # path compression
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def labels(self) -> np.ndarray:
        """Dense group ids in [0, n_groups)."""
        roots = np.array([self.find(i) for i in range(len(self.parent))])
        _, labels = np.unique(roots, return_inverse=True)
        return labels


@dataclass
class FoFResult:
    """Group assignment in *tree order* plus per-group summaries."""

    labels: np.ndarray        # (N,) dense group id per particle
    group_sizes: np.ndarray   # (G,)
    group_com: np.ndarray     # (G, 3) mass-weighted centres
    group_mass: np.ndarray    # (G,)

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    def groups_larger_than(self, n_min: int) -> np.ndarray:
        """Ids of groups with at least ``n_min`` members (halos)."""
        return np.flatnonzero(self.group_sizes >= n_min)


def friends_of_friends(
    particles_or_tree: ParticleSet | Tree,
    linking_length: float,
    bucket_size: int = 16,
) -> FoFResult:
    """Group particles chained by separations <= ``linking_length``.

    Classic cosmology convention: the linking length is usually ``b`` times
    the mean interparticle spacing with b ≈ 0.2; pass the product.
    """
    if linking_length <= 0:
        raise ValueError(f"linking_length must be > 0, got {linking_length}")
    if isinstance(particles_or_tree, Tree):
        tree = particles_or_tree
    else:
        tree = build_tree(particles_or_tree, tree_type="oct", bucket_size=bucket_size)
    n = tree.n_particles
    lists, _ = ball_search(tree, linking_length, include_self=False)
    uf = UnionFind(n)
    for i, nbrs in enumerate(lists):
        for j in nbrs:
            uf.union(i, int(j))
    labels = uf.labels()

    n_groups = int(labels.max()) + 1 if n else 0
    sizes = np.bincount(labels, minlength=n_groups)
    mass = np.zeros(n_groups)
    np.add.at(mass, labels, tree.particles.mass)
    com = np.zeros((n_groups, 3))
    np.add.at(com, labels, tree.particles.mass[:, None] * tree.particles.position)
    with np.errstate(divide="ignore", invalid="ignore"):
        com = np.where(mass[:, None] > 0, com / mass[:, None], 0.0)
    return FoFResult(labels=labels, group_sizes=sizes, group_com=com, group_mass=mass)


def brute_force_fof(positions: np.ndarray, linking_length: float) -> np.ndarray:
    """Reference O(N²) FoF labels (same dense-id convention)."""
    positions = np.asarray(positions)
    n = len(positions)
    uf = UnionFind(n)
    ll2 = linking_length**2
    for i in range(n):
        d2 = ((positions[i + 1 :] - positions[i]) ** 2).sum(axis=1)
        for j in np.flatnonzero(d2 <= ll2):
            uf.union(i, i + 1 + int(j))
    return uf.labels()
