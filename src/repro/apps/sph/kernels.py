"""SPH smoothing kernels.

``h`` here is the kernel *support radius*: W(r >= h) = 0.  Normalisations
are the standard 3-D ones, ∫ W dV = 1.  Three families are provided:

* cubic spline (Monaghan & Lattanzio 1985) — the classic default;
* Wendland C2 and C4 (Wendland 1995; Dehnen & Aly 2012) — positive-definite
  kernels immune to the pairing instability at large neighbour counts.

``KERNELS`` maps names to (W, gradW_over_r) pairs for the density and force
modules.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cubic_spline_W",
    "cubic_spline_gradW_over_r",
    "wendland_c2_W",
    "wendland_c2_gradW_over_r",
    "wendland_c4_W",
    "wendland_c4_gradW_over_r",
    "KERNELS",
]

_SIGMA3 = 8.0 / np.pi  # 3-D normalisation for support-radius convention


def cubic_spline_W(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Kernel value W(r, h); broadcasts r against h."""
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing length must be > 0")
    q = r / h
    w = np.zeros(np.broadcast(r, h).shape)
    inner = q <= 0.5
    outer = (q > 0.5) & (q < 1.0)
    qi = np.broadcast_to(q, w.shape)
    w = np.where(inner, 1.0 - 6.0 * qi**2 + 6.0 * qi**3, w)
    w = np.where(outer, 2.0 * (1.0 - qi) ** 3, w)
    return _SIGMA3 / np.broadcast_to(h, w.shape) ** 3 * w


def cubic_spline_gradW_over_r(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """``(dW/dr) / r`` — the scalar multiplying the separation vector in
    ``∇W = (dW/dr) r̂ = [(dW/dr)/r] r⃗``.

    Returning the ratio avoids a 0/0 at r = 0 (the cubic spline's gradient
    vanishes there; we return the analytic limit of the inner branch).
    """
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing length must be > 0")
    q = r / h
    shape = np.broadcast(r, h).shape
    qb = np.broadcast_to(q, shape)
    hb = np.broadcast_to(h, shape)
    out = np.zeros(shape)
    inner = qb <= 0.5
    outer = (qb > 0.5) & (qb < 1.0)
    # d/dr [1 - 6q² + 6q³] = (-12q + 18q²)/h ; divided by r = qh:
    # (-12 + 18q)/h².
    out = np.where(inner, (-12.0 + 18.0 * qb) / hb**2, out)
    # d/dr [2(1-q)³] = -6(1-q)²/h ; divided by r: -6(1-q)²/(q h²).
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(outer, -6.0 * (1.0 - qb) ** 2 / (np.where(qb > 0, qb, 1.0) * hb**2), out)
    return _SIGMA3 / hb**3 * out


def _q_and_shape(r, h):
    r = np.asarray(r, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    if np.any(h <= 0):
        raise ValueError("smoothing length must be > 0")
    shape = np.broadcast(r, h).shape
    return np.broadcast_to(r / h, shape), np.broadcast_to(h, shape), shape


_WC2_SIGMA = 21.0 / (2.0 * np.pi)


def wendland_c2_W(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Wendland C2: W ∝ (1-q)⁴ (1+4q) within the support."""
    q, hb, shape = _q_and_shape(r, h)
    inside = q < 1.0
    w = np.where(inside, (1.0 - q) ** 4 * (1.0 + 4.0 * q), 0.0)
    return _WC2_SIGMA / hb**3 * w


def wendland_c2_gradW_over_r(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """(dW/dr)/r for Wendland C2: dW/dq = -20 q (1-q)³."""
    q, hb, shape = _q_and_shape(r, h)
    inside = q < 1.0
    # dW/dr / r = sigma/h^3 * dW/dq / (h * q h) = sigma/h^5 * (dW/dq)/q
    # (dW/dq)/q = -20 (1-q)^3, finite at q = 0.
    val = np.where(inside, -20.0 * (1.0 - q) ** 3, 0.0)
    return _WC2_SIGMA / hb**5 * val


_WC4_SIGMA = 495.0 / (32.0 * np.pi)


def wendland_c4_W(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Wendland C4: W ∝ (1-q)⁶ (1 + 6q + 35q²/3)."""
    q, hb, shape = _q_and_shape(r, h)
    inside = q < 1.0
    w = np.where(inside, (1.0 - q) ** 6 * (1.0 + 6.0 * q + (35.0 / 3.0) * q**2), 0.0)
    return _WC4_SIGMA / hb**3 * w


def wendland_c4_gradW_over_r(r: np.ndarray, h: np.ndarray) -> np.ndarray:
    """(dW/dr)/r for Wendland C4: (dW/dq)/q = -(56/3)(1-q)⁵(1+5q)."""
    q, hb, shape = _q_and_shape(r, h)
    inside = q < 1.0
    val = np.where(inside, -(56.0 / 3.0) * (1.0 - q) ** 5 * (1.0 + 5.0 * q), 0.0)
    return _WC4_SIGMA / hb**5 * val


#: name -> (W, gradW_over_r)
KERNELS = {
    "cubic": (cubic_spline_W, cubic_spline_gradW_over_r),
    "wendland_c2": (wendland_c2_W, wendland_c2_gradW_over_r),
    "wendland_c4": (wendland_c4_W, wendland_c4_gradW_over_r),
}
