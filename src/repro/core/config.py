"""Run configuration (paper §II-D-2, Fig 8).

"To conduct a simulation with ParaTreeT, the user first defines a
configuration object for initialization ... input file name, number of
iterations, load balancing period, minimum number of Subtrees and
Partitions, decomposition type, tree type, among others.  Users can also
tune other performance-specific hyperparameters: number of nodes fetched per
request, number of branch nodes shared across all processors, and load
balancing frequency."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..trees import TreeBuildConfig, TreeType

__all__ = ["Configuration"]


@dataclass
class Configuration:
    """All knobs of a ParaTreeT run.

    Attributes mirror the paper's ``Configuration``; performance
    hyperparameters (``nodes_per_request``, ``shared_branch_levels``) feed
    the software-cache layer and the runtime simulator.
    """

    input_file: str | None = None
    num_iterations: int = 1
    tree_type: TreeType | str = TreeType.OCT
    decomp_type: str = "sfc"
    bucket_size: int = 16
    #: Tree construction algorithm: "recursive" (node-at-a-time stack walk)
    #: or "linear" (vectorised level-by-level build; byte-identical output).
    tree_builder: str = "recursive"
    #: Minimum number of Partitions (load units); 0 = one per target bucket
    #: group chosen automatically.
    num_partitions: int = 8
    #: Minimum number of Subtrees (memory units).
    num_subtrees: int = 8
    #: Which traversal engine drives ``start_down`` ("transposed" is the
    #: ParaTreeT default; "per-bucket"/"basic" is the classic style).
    traverser: str = "transposed"
    #: Iterations between load re-balancing; 0 disables (the paper's
    #: evaluation runs with LB off).
    lb_period: int = 0
    lb_strategy: str = "sfc"
    #: Iterations between full flush/redistribution of particles.
    flush_period: int = 0
    #: Cache hyperparameter: how many descendant levels of a requested node
    #: the home process ships with each fill.
    nodes_per_request: int = 3
    #: Cache hyperparameter: how many top levels of the global tree are
    #: broadcast to every process before traversal starts.
    shared_branch_levels: int = 3
    #: Random seed threaded through generators for reproducibility.
    seed: int = 0
    #: Free-form application-specific options.
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tree_type = TreeType(self.tree_type)
        if self.num_iterations < 0:
            raise ValueError("num_iterations must be >= 0")
        if self.bucket_size < 1:
            raise ValueError("bucket_size must be >= 1")
        if self.num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if self.num_subtrees < 1:
            raise ValueError("num_subtrees must be >= 1")
        if self.nodes_per_request < 1:
            raise ValueError("nodes_per_request must be >= 1")
        if self.shared_branch_levels < 0:
            raise ValueError("shared_branch_levels must be >= 0")
        if self.tree_builder not in ("recursive", "linear"):
            raise ValueError(
                f"tree_builder must be 'recursive' or 'linear', got {self.tree_builder!r}"
            )

    def tree_build_config(self) -> TreeBuildConfig:
        return TreeBuildConfig(
            tree_type=self.tree_type,
            bucket_size=self.bucket_size,
            builder=self.tree_builder,
        )

    def to_dict(self) -> dict:
        """JSON-serializable view of every knob (checkpoint metadata)."""
        return {
            "input_file": self.input_file,
            "num_iterations": int(self.num_iterations),
            "tree_type": str(TreeType(self.tree_type).value),
            "decomp_type": self.decomp_type,
            "bucket_size": int(self.bucket_size),
            "tree_builder": self.tree_builder,
            "num_partitions": int(self.num_partitions),
            "num_subtrees": int(self.num_subtrees),
            "traverser": self.traverser,
            "lb_period": int(self.lb_period),
            "lb_strategy": self.lb_strategy,
            "flush_period": int(self.flush_period),
            "nodes_per_request": int(self.nodes_per_request),
            "shared_branch_levels": int(self.shared_branch_levels),
            "seed": int(self.seed),
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Configuration":
        """Inverse of :meth:`to_dict` (unknown keys rejected by the ctor)."""
        return cls(**d)
