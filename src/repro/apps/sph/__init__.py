"""Smoothed-particle hydrodynamics (paper §III-B, Fig 11).

Each iteration runs a k-nearest-neighbours traversal to find every
particle's principal density contributors, sums kernel-weighted masses into
a density, models the pressure field, and applies pairwise pressure forces.
The Gadget-2 comparison baseline converges a smoothing length per particle
by repeated fixed-ball searches instead — "more parallelizable but less
efficient" — and its extra traversal work is what Fig 11's gap comes from.
"""

from .kernels import (
    KERNELS,
    cubic_spline_W,
    cubic_spline_gradW_over_r,
    wendland_c2_W,
    wendland_c2_gradW_over_r,
    wendland_c4_W,
    wendland_c4_gradW_over_r,
)
from .density import SPHState, compute_density_knn
from .gadget_baseline import GadgetSmoothingResult, gadget_style_density
from .forces import compute_pressure_forces, equation_of_state
from .viscosity import ViscosityParams, compute_sph_accelerations
from .driver import SPHDriver

__all__ = [
    "KERNELS",
    "cubic_spline_W",
    "wendland_c2_W",
    "wendland_c2_gradW_over_r",
    "wendland_c4_W",
    "wendland_c4_gradW_over_r",
    "cubic_spline_gradW_over_r",
    "SPHState",
    "compute_density_knn",
    "GadgetSmoothingResult",
    "gadget_style_density",
    "compute_pressure_forces",
    "equation_of_state",
    "SPHDriver",
    "ViscosityParams",
    "compute_sph_accelerations",
]
