"""The Data abstraction: generic accumulation and the vectorised fast path."""

import numpy as np
import pytest

from repro.apps.gravity import CentroidData, compute_centroid_arrays
from repro.core import accumulate_data, segment_sums
from repro.core.data import AdditiveArrayData, combine_sequence, extract_additive
from repro.particles import plummer_sphere
from repro.trees import build_tree


@pytest.fixture(scope="module")
def tree():
    return build_tree(plummer_sphere(700, seed=1), tree_type="oct", bucket_size=10)


class TestGenericAccumulation:
    def test_root_has_global_moments(self, tree):
        data = accumulate_data(tree, CentroidData)
        p = tree.particles
        assert data[0].sum_mass == pytest.approx(p.mass.sum())
        com = (p.mass[:, None] * p.position).sum(axis=0) / p.mass.sum()
        assert np.allclose(data[0].centroid(), com)

    def test_every_node_matches_its_slice(self, tree):
        data = accumulate_data(tree, CentroidData)
        p = tree.particles
        for i in range(0, tree.n_nodes, 11):
            s, e = tree.pstart[i], tree.pend[i]
            assert data[i].sum_mass == pytest.approx(p.mass[s:e].sum())
            expect = (p.mass[s:e, None] * p.position[s:e]).sum(axis=0)
            assert np.allclose(data[i].moment, expect)

    def test_data_attached_to_tree(self, tree):
        accumulate_data(tree, CentroidData)
        assert tree.data is not None
        assert tree.node(0).data.sum_mass > 0

    def test_parent_equals_sum_of_children(self, tree):
        data = accumulate_data(tree, CentroidData)
        for i in range(tree.n_nodes):
            kids = tree.children(i)
            if len(kids) == 0:
                continue
            total = combine_sequence(CentroidData, [data[int(c)] for c in kids])
            assert total.sum_mass == pytest.approx(data[i].sum_mass)
            assert np.allclose(total.moment, data[i].moment)

    def test_quadrupole_is_traceless_symmetric(self, tree):
        data = accumulate_data(tree, CentroidData)
        q = data[0].quadrupole()
        assert np.allclose(q, q.T)
        assert abs(np.trace(q)) < 1e-9 * np.abs(q).max()


class TestVectorisedFastPath:
    def test_matches_generic_engine(self, tree):
        """The prefix-sum extraction is exactly the generic accumulation."""
        data = accumulate_data(tree, CentroidData)
        arrays = compute_centroid_arrays(tree, theta=0.7, with_quadrupole=True)
        for i in range(0, tree.n_nodes, 5):
            assert arrays.mass[i] == pytest.approx(data[i].sum_mass)
            assert np.allclose(arrays.centroid[i], data[i].centroid(), atol=1e-12)
            assert np.allclose(arrays.quad[i], data[i].quadrupole(), atol=1e-6)

    def test_opening_radius_monotone_with_theta(self, tree):
        loose = compute_centroid_arrays(tree, theta=1.0)
        tight = compute_centroid_arrays(tree, theta=0.3)
        assert np.all(tight.open_radius_sq >= loose.open_radius_sq)

    def test_invalid_theta(self, tree):
        with pytest.raises(ValueError):
            compute_centroid_arrays(tree, theta=0.0)


class TestAdditiveArrayData:
    def test_declarative_moments(self, tree):
        class MassAndCount(AdditiveArrayData):
            @classmethod
            def moments(cls):
                return {
                    "mass": lambda p: p.mass,
                    "count": lambda p: np.ones(len(p)),
                }

        arrays = extract_additive(tree, MassAndCount)
        assert arrays["mass"][0] == pytest.approx(tree.particles.mass.sum())
        assert arrays["count"][0] == tree.n_particles
        counts = tree.pend - tree.pstart
        assert np.allclose(arrays["count"], counts)

    def test_finalize_hook(self, tree):
        class Normalised(AdditiveArrayData):
            @classmethod
            def moments(cls):
                return {"mass": lambda p: p.mass}

            @classmethod
            def finalize(cls, tree, arrays):
                arrays["frac"] = arrays["mass"] / arrays["mass"][0]
                return arrays

        arrays = extract_additive(tree, Normalised)
        assert arrays["frac"][0] == pytest.approx(1.0)

    def test_base_class_abstract(self):
        with pytest.raises(NotImplementedError):
            AdditiveArrayData.moments()


class TestSegmentSums:
    def test_matches_loop(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=100)
        starts = np.array([0, 10, 50, 99, 30])
        ends = np.array([10, 50, 99, 100, 30])  # includes an empty range
        out = segment_sums(v, starts, ends)
        for k, (s, e) in enumerate(zip(starts, ends)):
            assert out[k] == pytest.approx(v[s:e].sum())

    def test_2d_values(self):
        v = np.arange(12, dtype=float).reshape(6, 2)
        out = segment_sums(v, np.array([0, 3]), np.array([3, 6]))
        assert np.allclose(out[0], v[:3].sum(axis=0))
        assert np.allclose(out[1], v[3:].sum(axis=0))
