"""In-memory double checkpointing (the Charm++/ChaNGa buddy scheme).

Each rank keeps its own latest checkpoint blob in memory *and* mirrors it
to a buddy rank (the next rank, ring order).  A crashed rank therefore
recovers without touching the filesystem: its replacement pulls the replica
from the buddy — which is exactly the transfer the DES recovery model
charges for (wire latency + serialization + bandwidth + deserialize).  The
scheme tolerates any single-rank failure; losing a rank *and* its buddy
between commits loses the state, which :meth:`BuddyStore.recover` reports
as an error rather than silently restarting from nothing.
"""

from __future__ import annotations

from .checkpoint import CheckpointError

__all__ = ["BuddyStore"]


class BuddyStore:
    """Blob store with ring-buddy replication over ``n_ranks`` ranks."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = int(n_ranks)
        #: rank -> its own latest checkpoint blob
        self._own: dict[int, bytes] = {}
        #: rank -> replica of its buddy's blob (held *for* buddy_of(rank)^-1)
        self._replica: dict[int, bytes] = {}

    def buddy_of(self, rank: int) -> int:
        """The rank holding ``rank``'s replica (ring neighbor)."""
        self._check(rank)
        return (rank + 1) % self.n_ranks

    def commit(self, rank: int, blob: bytes) -> int:
        """Store ``rank``'s new checkpoint locally and on its buddy;
        returns the buddy rank."""
        self._check(rank)
        blob = bytes(blob)
        buddy = (rank + 1) % self.n_ranks
        self._own[rank] = blob
        self._replica[buddy] = blob
        return buddy

    def lose_rank(self, rank: int) -> None:
        """Simulate a crash: everything in ``rank``'s memory is gone — its
        own checkpoint and any replica it held for its neighbor."""
        self._check(rank)
        self._own.pop(rank, None)
        self._replica.pop(rank, None)

    def recover(self, rank: int) -> tuple[bytes, bool]:
        """The blob to restart ``rank`` from, and whether it came from the
        buddy (True) or survived locally (False)."""
        self._check(rank)
        own = self._own.get(rank)
        if own is not None:
            return own, False
        buddy = (rank + 1) % self.n_ranks
        replica = self._replica.get(buddy)
        if replica is None:
            raise CheckpointError(
                f"rank {rank} lost its checkpoint and buddy rank {buddy} "
                f"holds no replica (double failure between commits)"
            )
        return replica, True

    def has_checkpoint(self, rank: int) -> bool:
        self._check(rank)
        return rank in self._own or (rank + 1) % self.n_ranks in self._replica

    def blob_bytes(self, rank: int) -> int:
        """Size of the recoverable blob for ``rank`` (0 when none)."""
        try:
            blob, _ = self.recover(rank)
        except CheckpointError:
            return 0
        return len(blob)

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.n_ranks})")
