"""DES model of the serving pipeline: admission + batching + execution.

The model reuses the *actual* policy objects — the same
:class:`~repro.serve.admission.AdmissionController` and
:class:`~repro.serve.batcher.MicroBatcher` classes the real service
drives — so the shed/served/deadline-missed accounting it produces is
the policy's accounting, not a re-implementation's.  Only execution
timing is modeled: a per-batch cost with seeded stragglers and worker
crashes (the PR 3/5 failure vocabulary at serving scale).

This is the second validation leg of ISSUE 9: run a million-user
traffic shape through the model in seconds, then replay the same seeded
trace against the real server scaled down and assert the accounting
matches (see :func:`repro.serve.bench.accounting_delta`).

Determinism: single-threaded event loop, one seeded RNG, and admission
decisions keyed off each query's scheduled arrival offset ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..obs import Log2Histogram
from ..runtime.des import Simulator
from .admission import AdmissionConfig, AdmissionController
from .batcher import BatchPolicy, MicroBatcher
from .traffic import TrafficTrace


@dataclass(frozen=True)
class ServiceModel:
    """Simulated execution timing for one batch server."""

    batch_overhead: float = 2e-4     # fixed dispatch cost per batch (s)
    per_query: float = 5e-5          # marginal cost per query (s)
    straggler_prob: float = 0.0      # batch hits a slow worker
    straggler_factor: float = 8.0    # and takes this much longer
    crash_prob: float = 0.0          # batch's worker dies mid-flight
    crash_restart: float = 0.05      # pool rebuild delay before re-dispatch


@dataclass
class ServeSimResult:
    """Accounting and tails from one simulated run."""

    counters: dict[str, int]
    accounting: dict[str, int]
    makespan: float
    latency: Log2Histogram
    batches: int = 0
    stragglers: int = 0
    crashes: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        q = (self.latency.quantiles((0.5, 0.99))
             if self.latency.count else {})
        return {
            "counters": self.counters,
            "makespan_s": round(self.makespan, 6),
            "batches": self.batches,
            "stragglers": self.stragglers,
            "crashes": self.crashes,
            "p50_s": q.get("p50"), "p99_s": q.get("p99"),
            **self.meta,
        }


def simulate_service(trace: TrafficTrace, admission: AdmissionConfig,
                     batch_policy: BatchPolicy | None = None,
                     model: ServiceModel | None = None,
                     seed: int = 0) -> ServeSimResult:
    """Run one seeded trace through the modeled pipeline."""
    model = model or ServiceModel()
    controller = AdmissionController(admission)
    batcher = MicroBatcher(batch_policy or BatchPolicy())
    sim = Simulator()
    rng = np.random.default_rng(seed)
    latency = Log2Histogram()
    stats = {"batches": 0, "stragglers": 0, "crashes": 0}
    busy = [False]  # one batch in flight at a time, like the real dispatcher

    def service_time(n: int) -> float:
        dt = model.batch_overhead + model.per_query * n
        if model.straggler_prob > 0.0 and rng.random() < model.straggler_prob:
            stats["stragglers"] += 1
            dt *= model.straggler_factor
        return dt

    def dispatch() -> None:
        if busy[0] or not controller.queue:
            return
        batch, expired = batcher.form_batch(controller.queue, sim.now)
        if expired:
            controller.note_expired(len(expired))
        if not batch:
            if controller.queue:
                dispatch()
            return
        busy[0] = True
        stats["batches"] += 1
        dt = service_time(len(batch))
        if model.crash_prob > 0.0 and rng.random() < model.crash_prob:
            # worker dies: supervision rebuilds the pool and re-dispatches,
            # so the batch still completes — late, not lost
            stats["crashes"] += 1
            dt += model.crash_restart + service_time(len(batch))

        def complete() -> None:
            busy[0] = False
            lats = [sim.now - entry.arrival for entry in batch]
            for lat in lats:
                latency.observe(lat)
            controller.note_served(len(batch), lats)
            dispatch()

        sim.schedule(dt, complete)

    for query in trace.queries:
        def arrive(q=query) -> None:
            controller.offer(q, sim.now)
            dispatch()
        sim.at(query.t, arrive)

    makespan = sim.run()
    # conservation check the model must always satisfy
    c = controller.counters
    assert c.offered == c.admitted + c.shed_total, "offer accounting broken"
    assert c.admitted == c.settled + len(controller.queue), \
        "admitted work leaked"
    return ServeSimResult(
        counters=c.to_dict(), accounting=c.accounting_key(),
        makespan=makespan, latency=latency,
        batches=stats["batches"], stragglers=stats["stragglers"],
        crashes=stats["crashes"],
        meta={"events": sim.events_processed, "seed": seed,
              "n_queries": len(trace)},
    )
