"""Configuration and Driver pipeline tests."""

import numpy as np
import pytest

from repro.apps.gravity import GravityDriver, compute_gravity
from repro.core import Configuration, Driver
from repro.particles import clustered_clumps, save_particles, uniform_cube
from repro.trees import TreeType


class TestConfiguration:
    def test_defaults(self):
        cfg = Configuration()
        assert cfg.tree_type == TreeType.OCT
        assert cfg.decomp_type == "sfc"
        assert cfg.traverser == "transposed"

    def test_string_tree_type_coerced(self):
        assert Configuration(tree_type="kd").tree_type == TreeType.KD

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_iterations": -1},
            {"bucket_size": 0},
            {"num_partitions": 0},
            {"num_subtrees": 0},
            {"nodes_per_request": 0},
            {"shared_branch_levels": -1},
            {"tree_type": "nonexistent"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Configuration(**kwargs)

    def test_tree_build_config(self):
        cfg = Configuration(tree_type="longest", bucket_size=7)
        tbc = cfg.tree_build_config()
        assert tbc.tree_type == TreeType.LONGEST_DIM
        assert tbc.bucket_size == 7


class TestDriverPipeline:
    def make_driver(self, **cfg_kwargs):
        class Main(GravityDriver):
            def create_particles(self, config):
                return clustered_clumps(1200, seed=13)

        defaults = dict(
            num_iterations=2,
            tree_type="oct",
            decomp_type="sfc",
            num_partitions=8,
            num_subtrees=8,
        )
        defaults.update(cfg_kwargs)
        return Main(Configuration(**defaults), theta=0.7, softening=1e-3)

    def test_run_produces_reports(self):
        d = self.make_driver()
        reports = d.run()
        assert len(reports) == 2
        for r in reports:
            assert r.stats.pp_interactions > 0
            assert r.partition_loads.sum() == 1200
            assert r.imbalance >= 1.0

    def test_accelerations_match_one_shot_solver(self):
        d = self.make_driver(num_iterations=1)
        d.run()
        # driver's tree-order accelerations, scattered to input order, must
        # equal the standalone solver on the same particles
        acc_driver = d.tree.particles.scatter_to_input_order(d.accelerations)
        res = compute_gravity(
            clustered_clumps(1200, seed=13), theta=0.7, softening=1e-3
        )
        assert np.allclose(acc_driver, res.accel, rtol=1e-9, atol=1e-14)

    def test_input_file_loading(self, tmp_path):
        path = tmp_path / "in.npz"
        save_particles(path, uniform_cube(300, seed=1))

        class Main(GravityDriver):
            pass

        d = Main(Configuration(input_file=str(path), num_iterations=1,
                               num_partitions=4, num_subtrees=4))
        d.run()
        assert d.tree.n_particles == 300

    def test_create_particles_required(self):
        class Bare(Driver):
            def traversal(self, iteration):
                pass

        with pytest.raises(NotImplementedError):
            Bare(Configuration(num_iterations=1)).run()

    def test_load_balancing_reduces_measured_imbalance(self):
        """After an SFC load rebalance, the *work* per partition is more
        even than count-based decomposition on clustered data."""
        from repro.core.traverser import BucketLoadRecorder

        d = self.make_driver(num_iterations=3, lb_period=1, num_partitions=8)
        d.run()
        assert any(r.rebalanced for r in d.reports)
        # Measure work imbalance of first (count-based) vs last (load-based)
        # assignment via a fresh traversal-load recording.
        rec = BucketLoadRecorder(d.tree)
        from repro.apps.gravity import GravityVisitor, compute_centroid_arrays
        from repro.core import get_traverser

        visitor = GravityVisitor(d.tree, compute_centroid_arrays(d.tree, theta=0.7))
        get_traverser("transposed").traverse(d.tree, visitor, None, rec)
        per_particle = rec.per_particle_load(d.tree)
        loads = np.zeros(8)
        np.add.at(loads, d.decomposition.particle_partition, per_particle)
        counts_based = np.zeros(8)
        from repro.decomp import SfcDecomposer

        base = SfcDecomposer().assign(d.tree.particles, 8)
        np.add.at(counts_based, base, per_particle)
        from repro.decomp import imbalance

        assert imbalance(loads) <= imbalance(counts_based) + 0.05

    def test_decomp_types_run(self):
        for decomp in ("sfc", "oct", "longest"):
            d = self.make_driver(num_iterations=1, decomp_type=decomp)
            d.run()
            assert d.decomposition is not None

    def test_tree_types_run(self):
        for tt in ("oct", "kd", "longest"):
            d = self.make_driver(num_iterations=1, tree_type=tt)
            d.run()
            assert d.tree.tree_type in ("oct", "kd", "longest")

    def test_basic_traverser_config(self):
        d = self.make_driver(num_iterations=1, traverser="per-bucket")
        d.run()
        assert d.reports[0].stats.pp_interactions > 0

    def test_evolution_changes_positions(self):
        class Main(GravityDriver):
            def create_particles(self, config):
                return clustered_clumps(300, seed=14)

        cfg = Configuration(num_iterations=2, num_partitions=4, num_subtrees=4)
        d = Main(cfg, theta=0.7, softening=1e-2, dt=1e-3)
        before = None
        d.configure(d.config)
        d.particles = d.create_particles(d.config)
        before = np.sort(d.particles.position[:, 0]).copy()
        d.run()
        after = np.sort(d.particles.position[:, 0])
        assert not np.allclose(before, after)
