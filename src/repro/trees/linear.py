"""Vectorised linear-octree builder (Cornerstone-style).

The recursive builder in :mod:`repro.trees.build_oct` does Python-level work
per *node* (a ``searchsorted`` and a box split inside a ``while`` loop over a
stack).  This module builds the identical tree with work proportional to the
*depth* instead: one Morton sort, then one counting pass per level in which
every node of that level is subdivided at once.

The construction runs in two fully vectorised phases:

1. **Level-order (BFS) subdivision.**  After the Morton sort, every octree
   node is a contiguous slice of the key array and every child boundary is a
   *change point* of the level-``L+1`` key prefix.  One ``np.flatnonzero``
   over adjacent prefixes finds all boundaries of a level, and two
   ``searchsorted`` calls distribute them to the splitting parents — no
   per-node Python whatsoever.
2. **Canonical renumbering.**  The recursive builder numbers nodes in the
   order its LIFO work stack pops them (children appear contiguously, in
   octant order, when their parent is popped — i.e. a depth-first order that
   descends through the *last* child first).  We reproduce that numbering
   exactly with three array passes: subtree sizes (bottom-up ``np.add.at``),
   depth-first positions (top-down segment suffix-sums), and child-block
   offsets (one ``cumsum`` over the internal nodes in pop order).

Because phase 2 makes the output *byte-identical* to
:func:`~repro.trees.build_oct.build_octree` — same node order, same float
boxes (child boxes are derived by the same ``0.5 * (lo + hi)`` halving), same
keys, same particle permutation — every downstream consumer (traversal
engines, decomposition tie-breaks, checkpoints, the shm arena) sees exactly
the tree it would have seen from the recursive builder.
"""

from __future__ import annotations

import numpy as np

from ..geometry import MORTON_BITS, morton_keys
from ..particles import ParticleSet
from .build import TreeBuildConfig
from .node import NO_NODE, Tree

__all__ = ["build_octree_linear"]


def build_octree_linear(particles: ParticleSet, config: TreeBuildConfig) -> Tree:
    """Build an octree without per-node recursion; bit-identical to
    :func:`~repro.trees.build_oct.build_octree`."""
    # Function-level import: repro.core imports repro.trees at package load.
    from ..core.util import ranges_to_indices

    universe = particles.bounding_box().cubified()
    keys = morton_keys(particles.position, universe)
    order = np.argsort(keys, kind="stable")
    particles = particles.permuted(order)
    keys = keys[order]
    n = len(particles)
    max_level = min(config.max_depth, MORTON_BITS)
    bucket = config.bucket_size

    # -- phase 1: level-order subdivision -----------------------------------
    # Per-level arrays; children of one parent are contiguous within a level
    # and parents appear in the same order as on the previous level.
    lvl_start = [np.array([0], dtype=np.int64)]
    lvl_end = [np.array([n], dtype=np.int64)]
    lvl_lo = [np.asarray(universe.lo, dtype=np.float64).reshape(1, 3).copy()]
    lvl_hi = [np.asarray(universe.hi, dtype=np.float64).reshape(1, 3).copy()]
    lvl_key = [np.array([1], dtype=np.uint64)]
    lvl_parent = [np.array([NO_NODE], dtype=np.int64)]  # global BFS index
    lvl_first = []   # global BFS index of first child, NO_NODE for leaves
    lvl_nchild = []  # children per node
    lvl_counts = []  # children per *splitting* node (segment lengths)
    level_base = [0]

    for lvl in range(max_level):
        start, end = lvl_start[lvl], lvl_end[lvl]
        first = np.full(len(start), NO_NODE, dtype=np.int64)
        nchild = np.zeros(len(start), dtype=np.int64)
        split = np.flatnonzero(end - start > bucket)
        if split.size == 0:
            lvl_first.append(first)
            lvl_nchild.append(nchild)
            break
        s, e = start[split], end[split]
        # Level-(lvl+1) prefix of every particle key; a child boundary inside
        # any splitting node is exactly a change point of this prefix.
        prefix = keys >> np.uint64(3 * (MORTON_BITS - (lvl + 1)))
        cp = np.flatnonzero(prefix[1:] != prefix[:-1]).astype(np.int64) + 1
        li = np.searchsorted(cp, s, side="right")
        ri = np.searchsorted(cp, e, side="left")
        counts = ri - li + 1  # change points in (s, e) cut [s, e) into runs
        total = int(counts.sum())
        firstpos = np.concatenate([[0], np.cumsum(counts)[:-1]])
        lastpos = firstpos + counts - 1

        child_start = np.empty(total, dtype=np.int64)
        child_start[firstpos] = s
        mid = np.ones(total, dtype=bool)
        mid[firstpos] = False
        child_start[mid] = cp[ranges_to_indices(li, ri)]
        child_end = np.empty(total, dtype=np.int64)
        child_end[lastpos] = e
        last_mask = np.zeros(total, dtype=bool)
        last_mask[lastpos] = True
        inner = np.flatnonzero(~last_mask)
        child_end[inner] = child_start[inner + 1]

        cprefix = prefix[child_start]
        child_key = cprefix + np.uint64(1 << (3 * (lvl + 1)))
        octant = (cprefix & np.uint64(7)).astype(np.int64)

        # Child boxes by float halving of the parent box — the identical
        # arithmetic (0.5 * (lo + hi), then replace one face per axis) the
        # recursive builder performs, so the floats match bit for bit.
        center = 0.5 * (lvl_lo[lvl][split] + lvl_hi[lvl][split])
        rep = np.repeat(np.arange(split.size), counts)
        plo, phi, pcenter = lvl_lo[lvl][split][rep], lvl_hi[lvl][split][rep], center[rep]
        bits = (octant[:, None] >> np.arange(3)[None, :]) & 1
        child_lo = np.where(bits == 1, pcenter, plo)
        child_hi = np.where(bits == 1, phi, pcenter)

        first[split] = (level_base[lvl] + len(start)) + firstpos
        nchild[split] = counts
        lvl_first.append(first)
        lvl_nchild.append(nchild)
        lvl_counts.append(counts)

        lvl_start.append(child_start)
        lvl_end.append(child_end)
        lvl_lo.append(child_lo)
        lvl_hi.append(child_hi)
        lvl_key.append(child_key)
        lvl_parent.append(level_base[lvl] + split[rep])
        level_base.append(level_base[lvl] + len(start))
    else:
        # Depth cap reached with the last level never examined for splits.
        lvl_first.append(np.full(len(lvl_start[-1]), NO_NODE, dtype=np.int64))
        lvl_nchild.append(np.zeros(len(lvl_start[-1]), dtype=np.int64))

    parent_b = np.concatenate(lvl_parent)
    first_b = np.concatenate(lvl_first)
    nchild_b = np.concatenate(lvl_nchild)
    start_b = np.concatenate(lvl_start)
    end_b = np.concatenate(lvl_end)
    lo_b = np.concatenate(lvl_lo, axis=0)
    hi_b = np.concatenate(lvl_hi, axis=0)
    key_b = np.concatenate(lvl_key)
    level_b = np.concatenate(
        [np.full(len(a), d, dtype=np.int64) for d, a in enumerate(lvl_start)]
    )
    m = len(parent_b)
    n_levels = len(lvl_start)

    # -- phase 2: canonical (recursive-builder) numbering --------------------
    # Subtree sizes, bottom-up: children of level L live at level L-1.
    size = np.ones(m, dtype=np.int64)
    for lvl in range(n_levels - 1, 0, -1):
        idx = np.arange(level_base[lvl], level_base[lvl] + len(lvl_start[lvl]))
        np.add.at(size, parent_b[idx], size[idx])

    # Depth-first position of every node under "last child first" descent:
    # pos(child_j) = pos(parent) + 1 + sum of later siblings' subtree sizes.
    pos = np.zeros(m, dtype=np.int64)
    for lvl in range(n_levels - 1):
        counts = lvl_counts[lvl] if lvl < len(lvl_counts) else None
        if counts is None or counts.size == 0:
            continue
        idx = np.arange(level_base[lvl + 1], level_base[lvl + 1] + len(lvl_start[lvl + 1]))
        sizes = size[idx]
        cs = np.cumsum(sizes)
        lastpos = np.cumsum(counts) - 1
        seg_id = np.repeat(np.arange(counts.size), counts)
        tail = cs[lastpos][seg_id] - cs
        pos[idx] = pos[parent_b[idx]] + 1 + tail

    # Internal nodes in pop (depth-first) order each claim the next
    # contiguous child block — exactly the recursive builder's numbering.
    new_idx = np.empty(m, dtype=np.int64)
    new_idx[0] = 0
    internal = np.flatnonzero(nchild_b > 0)
    if internal.size:
        order_int = internal[np.argsort(pos[internal])]
        offsets = 1 + np.concatenate([[0], np.cumsum(nchild_b[order_int])[:-1]])
        block = np.empty(m, dtype=np.int64)
        block[order_int] = offsets
        nonroot = np.arange(1, m)
        pp = parent_b[nonroot]
        new_idx[nonroot] = block[pp] + (nonroot - first_b[pp])

    inv = np.empty(m, dtype=np.int64)
    inv[new_idx] = np.arange(m)
    parent_n = parent_b[inv]
    remap = parent_n != NO_NODE
    parent_n[remap] = new_idx[parent_n[remap]]
    first_n = first_b[inv]
    remap = first_n != NO_NODE
    first_n[remap] = new_idx[first_n[remap]]

    tree = Tree(
        particles=particles,
        parent=parent_n,
        first_child=first_n,
        n_children=nchild_b[inv],
        pstart=start_b[inv],
        pend=end_b[inv],
        box_lo=lo_b[inv],
        box_hi=hi_b[inv],
        level=level_b[inv],
        key=key_b[inv],
        tree_type="oct",
        bucket_size=config.bucket_size,
    )
    if config.tight_boxes:
        _tighten_boxes_vectorized(tree)
    return tree


def _tighten_boxes_vectorized(tree: Tree) -> None:
    """Vectorised equivalent of ``build_oct._tighten_boxes``.

    Leaf slices tile ``[0, N)``, so ``np.minimum.reduceat`` over the
    pstart-sorted leaves gives every leaf's tight box in one pass; internal
    boxes follow bottom-up (min/max are exact, so combining children is
    bit-identical to reducing the node's whole particle slice).
    """
    pos = tree.particles.position
    leaves = tree.leaf_indices
    lsort = leaves[np.argsort(tree.pstart[leaves])]
    starts = tree.pstart[lsort]
    tree.box_lo[lsort] = np.minimum.reduceat(pos, starts, axis=0)
    tree.box_hi[lsort] = np.maximum.reduceat(pos, starts, axis=0)
    internal = tree.first_child != NO_NODE
    tree.box_lo[internal] = np.inf
    tree.box_hi[internal] = -np.inf
    for lvl in range(int(tree.level.max()), 0, -1):
        idx = np.flatnonzero(tree.level == lvl)
        np.minimum.at(tree.box_lo, tree.parent[idx], tree.box_lo[idx])
        np.maximum.at(tree.box_hi, tree.parent[idx], tree.box_hi[idx])
