"""End-to-end service tests: in-process round trips, the socket server,
overload shedding with retry hints, deadline expiry, drain + restart
bit-identity, DES-vs-real accounting agreement, and status frames.

No pytest-asyncio here: each test drives its own event loop through
``asyncio.run`` so the suite has zero plugin dependencies.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.obs.top import Dashboard, StatusWriter, read_status_file
from repro.serve import (
    AdmissionConfig,
    BatchPolicy,
    InProcessClient,
    Query,
    ServeConfig,
    ServiceModel,
    SocketServer,
    TrafficShape,
    accounting_delta,
    generate_traffic,
    run_trace,
    simulate_service,
    socket_query,
)
from repro.serve.service import QueryService

SMALL = {"kind": "clumps", "n": 1200, "seed": 7,
         "tree_type": "oct", "bucket_size": 16}


def _service(**kw) -> QueryService:
    kw.setdefault("dataset", dict(SMALL))
    kw.setdefault("status_every", 0.0)   # tests emit status explicitly
    return QueryService(ServeConfig(**kw))


def _q(i, point, **kw) -> Query:
    return Query(id=f"q{i}", op=kw.pop("op", "knn"),
                 point=np.asarray(point, float), **kw)


async def _stopped(service: QueryService, coro):
    try:
        return await coro
    finally:
        await service.stop()


class TestInProcess:
    def test_roundtrip_all_ops(self):
        service = _service()
        pos = service.state.particles.position

        async def go():
            await service.start()
            client = InProcessClient(service)
            queries = [
                _q(0, pos[10] + 0.01, k=5),
                _q(1, pos[20], op="range", radius=0.1),
                _q(2, pos[30], op="density", k=12),
            ]
            return await client.query_many(queries)

        r = asyncio.run(_stopped(service, go()))
        assert [x.status for x in r] == ["ok", "ok", "ok"]
        assert len(r[0].result["idx"]) == 5
        assert r[0].result["dist"] == sorted(r[0].result["dist"])
        assert r[1].result["count"] >= 1
        assert r[2].result["rho"] > 0
        assert r[0].queue_s is not None and r[0].service_s is not None
        c = service.admission.counters
        assert c.offered == 3 and c.served == 3 and c.shed_total == 0

    def test_invalid_query_is_error_not_crash(self):
        service = _service()

        async def go():
            await service.start()
            client = InProcessClient(service)
            bad = await client.query(_q(0, (0.5, 0.5, 0.5), op="warp"))
            good = await client.query(_q(1, (0.5, 0.5, 0.5)))
            return bad, good

        bad, good = asyncio.run(_stopped(service, go()))
        assert bad.status == "error" and "unknown op" in bad.error
        assert good.status == "ok"
        # invalid queries never enter admission accounting
        assert service.admission.counters.offered == 1
        assert service.invalid == 1

    def test_deadline_zero_expires_without_dispatch(self):
        service = _service()
        pos = service.state.particles.position

        async def go():
            await service.start()
            client = InProcessClient(service)
            queries = [_q(i, pos[i], deadline=0.0) for i in range(10)]
            queries += [_q(100 + i, pos[i]) for i in range(5)]
            return await client.query_many(queries)

        r = asyncio.run(_stopped(service, go()))
        assert sum(x.status == "expired" for x in r) == 10
        assert sum(x.status == "ok" for x in r) == 5
        c = service.admission.counters
        assert c.expired == 10 and c.served == 5
        assert service.batcher.dropped_expired == 10
        # an expired query must never have reached the executor
        assert c.admitted == c.served + c.expired

    def test_overload_sheds_with_retry_after(self):
        service = _service(
            admission=AdmissionConfig(queue_capacity=8),
            batch_max=8, batch_wait=0.0)
        pos = service.state.particles.position

        async def go():
            await service.start()
            client = InProcessClient(service)
            queries = [_q(i, pos[i % len(pos)]) for i in range(300)]
            return await client.query_many(queries)

        r = asyncio.run(_stopped(service, go()))
        shed = [x for x in r if x.status == "shed"]
        assert shed, "300 synchronous offers into a queue of 8 must shed"
        assert all(x.reason == "queue-full" for x in shed)
        assert all(x.retry_after is not None and x.retry_after >= 0
                   for x in shed)
        c = service.admission.counters
        assert c.offered == 300
        assert c.offered == c.admitted + c.shed_total
        assert c.max_queue_depth <= 8


class TestSocketServer:
    def test_unix_socket_roundtrip_and_malformed_line(self, tmp_path):
        service = _service()
        pos = service.state.particles.position
        sock = str(tmp_path / "serve.sock")

        async def go():
            await service.start()
            server = SocketServer(service, socket_path=sock)
            await server.start()
            try:
                wire = [_q(i, pos[i]).to_wire() for i in range(20)]
                docs = await socket_query(server.where, wire)
                # malformed line: server answers with an error response
                # on the same connection instead of dropping it
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(b"this is not json\n")
                writer.write((json.dumps(_q(99, pos[0]).to_wire()) + "\n")
                             .encode())
                await writer.drain()
                writer.write_eof()
                raw = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                return docs, [json.loads(x) for x in raw.splitlines()]
            finally:
                await server.stop()

        docs, tail = asyncio.run(_stopped(service, go()))
        assert len(docs) == 20
        assert all(d["status"] == "ok" for d in docs)
        assert {d["id"] for d in docs} == {f"q{i}" for i in range(20)}
        by_status = {d["status"] for d in tail}
        assert by_status == {"error", "ok"}
        err = next(d for d in tail if d["status"] == "error")
        assert "not valid JSON" in err["error"]

    def test_oversized_line_gets_error_not_dropped_connection(self, tmp_path):
        """A line past MAX_LINE must cost one error reply, not the stream
        (and not a silent skip that starves a pipelining client)."""
        from repro.serve.server import MAX_LINE

        service = _service()
        pos = service.state.particles.position
        sock = str(tmp_path / "serve.sock")

        async def go():
            await service.start()
            server = SocketServer(service, socket_path=sock)
            await server.start()
            try:
                reader, writer = await asyncio.open_unix_connection(sock)
                writer.write(b"x" * (MAX_LINE + 10) + b"\n")
                writer.write((json.dumps(_q(1, pos[0]).to_wire()) + "\n")
                             .encode())
                await writer.drain()
                writer.write_eof()
                raw = await asyncio.wait_for(reader.read(), timeout=10)
                writer.close()
                return [json.loads(x) for x in raw.splitlines()]
            finally:
                await server.stop()

        docs = asyncio.run(_stopped(service, go()))
        assert len(docs) == 2   # one reply per line sent
        statuses = sorted(d["status"] for d in docs)
        assert statuses == ["error", "ok"]
        err = next(d for d in docs if d["status"] == "error")
        assert "exceeds" in err["error"]

    def test_wire_t_is_untrusted(self, tmp_path):
        """A client-supplied scheduling offset must not drive the token
        bucket's clock: one huge ``t`` on the wire would otherwise stop
        all refills and shed every later query forever."""
        service = _service(
            admission=AdmissionConfig(queue_capacity=64, rate=1000.0,
                                      burst=8))
        pos = service.state.particles.position
        sock = str(tmp_path / "serve.sock")

        async def go():
            await service.start()
            server = SocketServer(service, socket_path=sock)
            await server.start()
            try:
                poisoned = _q(0, pos[0]).to_wire()
                poisoned["t"] = 1e12
                first = await socket_query(server.where, [poisoned])
                later = await socket_query(
                    server.where, [_q(i, pos[i]).to_wire()
                                   for i in range(1, 5)])
                return first, later
            finally:
                await server.stop()

        first, later = asyncio.run(_stopped(service, go()))
        assert first[0]["status"] == "ok"
        # the bucket metered on the wall clock, not the wire ``t``
        bucket = service.admission.bucket
        assert bucket._last is not None and bucket._last < 1e11
        assert all(d["status"] == "ok" for d in later)


class TestDrainRestart:
    def test_drain_then_resume_bit_identical_answers(self, tmp_path):
        """The zero-downtime restart contract: a drained checkpoint,
        resumed, answers byte-for-byte identically — and the resumed
        server's own drain checkpoint is byte-identical to the first."""
        ck1 = tmp_path / "gen1"
        ck2 = tmp_path / "gen2"
        service = _service(checkpoint_dir=str(ck1),
                           admission=AdmissionConfig(queue_capacity=64))
        pos = service.state.particles.position
        rng = np.random.default_rng(11)
        points = pos[rng.integers(0, len(pos), 30)] + rng.normal(0, 0.03, (30, 3))
        queries = [_q(i, p, k=6) for i, p in enumerate(points)]

        async def run_gen(svc):
            await svc.start()
            client = InProcessClient(svc)
            answers = await client.query_many([Query.from_wire(q.to_wire())
                                               for q in queries])
            path = await svc.drain()
            # post-drain offers shed with reason "draining", no retry hint
            late = await client.query(_q(999, points[0]))
            return answers, path, late

        a1, path1, late = asyncio.run(_stopped(service, run_gen(service)))
        assert late.status == "shed" and late.reason == "draining"
        assert late.retry_after is None

        resumed = _service(dataset={"checkpoint": path1},
                           checkpoint_dir=str(ck2),
                           admission=AdmissionConfig(queue_capacity=64))
        a2, path2, _ = asyncio.run(_stopped(resumed, run_gen(resumed)))

        for r1, r2 in zip(a1, a2):
            assert r1.status == r2.status == "ok"
            assert r1.result == r2.result   # exact floats, not approx

        # drain checkpoints byte-identical across the restart
        assert (ck1 / "serve_ckpt.npz").read_bytes() == \
               (ck2 / "serve_ckpt.npz").read_bytes()

    def test_drain_before_start_does_not_hang(self, tmp_path):
        """drain() before start() (or after stop()) has no dispatcher to
        signal _drained — it must settle immediately, not wait forever."""
        service = _service(checkpoint_dir=str(tmp_path))

        async def go():
            return await asyncio.wait_for(service.drain(), timeout=5)

        path = asyncio.run(_stopped(service, go()))
        assert path is not None and (tmp_path / "serve_ckpt.npz").exists()
        assert service.admission.draining


class TestDESAgreement:
    def _trace(self, rate, deadline_frac=0.0, n=400):
        shape = TrafficShape(rate=rate, duration=1.0, burst_factor=3.0,
                             deadline=0.0, deadline_frac=deadline_frac)
        return generate_traffic(shape, np.zeros(3), np.ones(3), seed=21,
                                max_queries=n)

    def _admission(self):
        # rate-limit + deadline shedding only: both are pure functions of
        # the trace (bucket consumes query.t, deadline 0.0 always expires
        # pre-dispatch), so sim and real must agree *exactly*.  Queue and
        # SLO sheds depend on wall-clock timing and are excluded here.
        return AdmissionConfig(queue_capacity=10_000, rate=150.0, burst=20)

    def test_real_matches_sim_accounting(self):
        trace = self._trace(rate=600, deadline_frac=0.3)
        sim = simulate_service(trace, self._admission(),
                               BatchPolicy(batch_max=32, batch_wait=0.0),
                               ServiceModel(), seed=21)
        service = _service(admission=self._admission(),
                           batch_max=32, batch_wait=0.0)

        async def go():
            return await run_trace(service, trace, pace=False)

        real = asyncio.run(_stopped(service, go()))
        delta = accounting_delta(real.accounting, sim.accounting)
        assert delta == {}, f"real vs sim diverged: {delta}"
        assert sim.accounting["shed_total"] > 0      # the regime is exercised
        assert sim.accounting["expired"] > 0

    def test_sim_faults_do_not_change_accounting(self):
        """Stragglers and crashes make the sim *late*, not lossy — the
        conservation ledger is identical with and without faults in the
        trace-deterministic regime."""
        trace = self._trace(rate=600, deadline_frac=0.2)
        clean = simulate_service(trace, self._admission(),
                                 BatchPolicy(batch_max=32, batch_wait=0.0),
                                 ServiceModel(), seed=21)
        faulty = simulate_service(trace, self._admission(),
                                  BatchPolicy(batch_max=32, batch_wait=0.0),
                                  ServiceModel(straggler_prob=0.3,
                                               crash_prob=0.15), seed=21)
        assert accounting_delta(faulty.accounting, clean.accounting) == {}
        assert faulty.makespan > clean.makespan


class TestStatusFrames:
    def test_snapshot_contents_and_writer(self, tmp_path):
        status_file = tmp_path / "serve_status.jsonl"
        service = _service()
        writer = StatusWriter(status_file)
        service.add_status_consumer(writer.update)
        pos = service.state.particles.position

        async def go():
            await service.start()
            client = InProcessClient(service)
            await client.query_many([_q(i, pos[i]) for i in range(12)])
            service.emit_status()
            await service.drain()   # emits the final drained frame

        asyncio.run(_stopped(service, go()))
        frames = read_status_file(status_file)
        assert len(frames) >= 2
        last = frames[-1]
        assert last["schema"] == "repro.status/1"
        assert last["pipeline"] == "serve"
        serve = last["serve"]
        assert serve["served"] == 12
        assert serve["queue_depth"] == 0
        assert serve["draining"] is True
        assert serve["breaker"] == "closed"
        assert serve["p99_s"] is not None
        # the dashboard renders the serve panel from the same frame
        screen = Dashboard(use_ansi=False).render(last)
        assert "serve" in screen and "DRAINING" in screen
        assert "served 12" in screen
        assert "breaker closed" in screen

    def test_shed_and_breaker_visible_in_panel(self):
        service = _service(admission=AdmissionConfig(queue_capacity=4),
                           batch_max=4, batch_wait=0.0)
        pos = service.state.particles.position

        async def go():
            await service.start()
            client = InProcessClient(service)
            await client.query_many([_q(i, pos[i % 50]) for i in range(200)])

        asyncio.run(_stopped(service, go()))
        snap = service.snapshot()
        assert snap["serve"]["shed_queue"] > 0
        screen = Dashboard(use_ansi=False).render(snap)
        assert "shed" in screen and "% of" in screen


class TestBenchHarness:
    def test_paced_overload_bench_sheds_with_bounded_tail(self):
        """Scaled-down acceptance scenario: offered load is a multiple of
        the admitted rate; the bench must shed explicitly (with hints),
        keep the queue bounded, and account for every query."""
        service = _service(
            admission=AdmissionConfig(queue_capacity=64, rate=200.0,
                                      burst=16),
            batch_max=32, batch_wait=0.0)
        shape = TrafficShape(rate=800, duration=1.0, burst_factor=4.0)
        trace = generate_traffic(shape, np.zeros(3), np.ones(3), seed=5,
                                 max_queries=500)

        async def go():
            return await run_trace(service, trace, pace=True, speed=4.0)

        res = asyncio.run(_stopped(service, go()))
        assert res.shed > 0
        assert res.retry_after_missing == 0   # every shed carries a hint
        assert res.counters["max_queue_depth"] <= 64
        total = sum(res.statuses.values())
        assert total == len(trace)
        acct = res.accounting
        assert acct["offered"] == acct["admitted"] + acct["shed_total"]
        if res.served:
            assert res.quantile(0.99) < 5.0   # tail bounded, not unbounded


@pytest.mark.slow
class TestProcessExecutor:
    def test_process_pool_answers_match_inline(self):
        inline = _service()
        procs = _service(executor="processes", workers=2)
        pos = inline.state.particles.position
        queries = [_q(i, pos[i] + 0.01, k=4) for i in range(8)]

        async def go(svc):
            await svc.start()
            return await InProcessClient(svc).query_many(
                [Query.from_wire(q.to_wire()) for q in queries])

        try:
            a = asyncio.run(_stopped(inline, go(inline)))
            b = asyncio.run(_stopped(procs, go(procs)))
        finally:
            procs.executor.shutdown()
        for r1, r2 in zip(a, b):
            assert r1.status == r2.status == "ok"
            assert r1.result == r2.result
