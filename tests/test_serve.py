"""Serving-layer units: protocol, admission policy (hypothesis-driven
conservation properties), micro-batcher, point-query kernels vs brute
force, circuit breaker, supervised executor, resident checkpointing,
traffic determinism, and the DES model's internal accounting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.particles import clustered_clumps
from repro.serve import (
    ADMITTED,
    AdmissionConfig,
    AdmissionController,
    BatchExecutor,
    BatchPolicy,
    BurnRateShedder,
    CircuitBreaker,
    MicroBatcher,
    ProtocolError,
    Query,
    Response,
    ServiceModel,
    TokenBucket,
    TrafficShape,
    build_resident_state,
    checkpoint_resident,
    decode_query_line,
    density_point,
    encode_line,
    execute_queries,
    generate_traffic,
    knn_point,
    range_point,
    simulate_service,
)
from repro.serve.admission import QueueEntry
from repro.trees import build_tree

# ---------------------------------------------------------------------------
# protocol


def _q(i=0, op="knn", point=(0.5, 0.5, 0.5), **kw) -> Query:
    return Query(id=f"q{i}", op=op, point=np.asarray(point, float), **kw)


class TestProtocol:
    def test_query_roundtrip(self):
        q = _q(3, deadline=0.5, t=1.25, k=12)
        back = Query.from_wire(q.to_wire())
        assert back.id == "q3" and back.k == 12
        assert back.deadline == 0.5 and back.t == 1.25
        np.testing.assert_array_equal(back.point, q.point)

    def test_decode_line_errors(self):
        with pytest.raises(ProtocolError):
            decode_query_line(b"not json {")
        with pytest.raises(ProtocolError):
            decode_query_line(b"[1, 2, 3]")
        with pytest.raises(ProtocolError):
            decode_query_line(b'{"op": "knn", "point": [1, 2]}')

    def test_response_wire(self):
        r = Response(id="a", status="shed", reason="rate-limit",
                     retry_after=0.25)
        doc = r.to_wire()
        assert doc["schema"] == "repro.serve/1"
        assert doc["retry_after"] == 0.25
        line = encode_line(doc)
        assert line.endswith(b"\n")
        back = Response.from_wire(doc)
        assert back.status == "shed" and back.retry_after == 0.25

    def test_validate(self):
        assert _q().validate(100, 64) is None
        assert "unknown op" in _q(op="frobnicate").validate(100, 64)
        assert "out of range" in _q(k=200).validate(100, 64)
        bad = Query(id="x", op="knn", point=np.array([np.nan, 0, 0]))
        assert "finite" in bad.validate(100, 64)
        assert "radius" in _q(op="range", radius=-1.0).validate(100, 64)


# ---------------------------------------------------------------------------
# token bucket


class TestTokenBucket:
    def test_burst_then_refill(self):
        b = TokenBucket(rate=10, burst=3)
        grants = [b.take(0.0) for _ in range(5)]
        assert grants == [True, True, True, False, False]
        assert b.take(0.1)          # one token refilled
        assert not b.take(0.1)
        assert b.time_to_token(0.1) == pytest.approx(0.1)

    def test_paced_stream_never_shed(self):
        # paced strictly under the refill rate -> every request admitted
        b = TokenBucket(rate=100, burst=1)
        assert all(b.take(i * 0.0101) for i in range(500))

    @given(st.lists(st.floats(min_value=0.0, max_value=2.0), min_size=1,
                    max_size=200),
           st.floats(min_value=0.5, max_value=50.0),
           st.floats(min_value=1.0, max_value=20.0))
    @settings(max_examples=60, deadline=None)
    def test_tokens_bounded(self, gaps, rate, burst):
        """Invariant: 0 <= tokens <= burst after any trace."""
        b = TokenBucket(rate=rate, burst=burst)
        now = 0.0
        for gap in gaps:
            now += gap
            b.take(now)
            assert 0.0 <= b.tokens <= b.burst


# ---------------------------------------------------------------------------
# admission controller (conservation properties)


offer_steps = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05),   # inter-arrival gap
        st.sampled_from([None, 0.0, 100.0]),        # deadline
        st.booleans(),                              # drain a batch now?
    ),
    min_size=1, max_size=300,
)


class TestAdmissionProperties:
    @given(offer_steps,
           st.integers(min_value=1, max_value=16),   # queue capacity
           st.one_of(st.none(), st.floats(min_value=5.0, max_value=500.0)))
    @settings(max_examples=80, deadline=None)
    def test_conservation_and_bounds(self, steps, capacity, rate):
        """The ISSUE 9 invariants: queue never exceeds capacity; every
        offer is accounted exactly once; admitted work ends up served,
        expired, or still queued; expired entries are never in a batch."""
        cfg = AdmissionConfig(queue_capacity=capacity, rate=rate)
        ctl = AdmissionController(cfg)
        batcher = MicroBatcher(BatchPolicy(batch_max=4, batch_wait=0.0))
        now = 0.0
        for i, (gap, deadline, drain_now) in enumerate(steps):
            now += gap
            q = _q(i, deadline=deadline, t=now)
            ctl.offer(q, now)
            assert len(ctl.queue) <= capacity
            if drain_now:
                batch, expired = batcher.form_batch(ctl.queue, now)
                ctl.note_expired(len(expired))
                ctl.note_served(len(batch))
                # a deadline-expired query is never dispatched
                for entry in batch:
                    assert not entry.expired_at(now)
                for entry in expired:
                    assert entry.expired_at(now)
        c = ctl.counters
        assert c.offered == len(steps)
        assert c.offered == c.admitted + c.shed_total
        assert c.admitted == c.served + c.expired + len(ctl.queue)
        assert c.max_queue_depth <= capacity

    def test_shed_reason_ordering(self):
        """Draining outranks queue-full outranks rate-limit, and a
        queue-full shed does not burn a bucket token."""
        cfg = AdmissionConfig(queue_capacity=1, rate=1000.0, burst=1.0)
        ctl = AdmissionController(cfg)
        assert ctl.offer(_q(0, t=0.0), 0.0) == ADMITTED
        assert ctl.offer(_q(1, t=0.0), 0.0) == "queue-full"
        assert ctl.bucket.tokens == 0.0  # only the admit consumed a token
        ctl.start_drain()
        assert ctl.offer(_q(2, t=0.0), 0.0) == "draining"

    def test_retry_after_hints(self):
        cfg = AdmissionConfig(queue_capacity=1, rate=10.0, burst=1.0)
        ctl = AdmissionController(cfg)
        assert ctl.offer(_q(0, t=0.0), 0.0) == ADMITTED
        verdict = ctl.offer(_q(1, t=0.0), 0.0)
        assert verdict == "queue-full"
        assert ctl.retry_after(verdict, _q(1, t=0.0), 0.0) >= 0.0
        ctl.queue.clear()
        verdict = ctl.offer(_q(2, t=0.0), 0.0)
        assert verdict == "rate-limit"
        hint = ctl.retry_after(verdict, _q(2, t=0.0), 0.0)
        assert hint == pytest.approx(0.1)
        ctl.start_drain()
        assert ctl.retry_after("draining", _q(3), 0.0) is None

    def test_burn_rate_shedder_trips_and_recovers(self):
        shedder = BurnRateShedder("lat<10ms,target=0.9,burn=1.5",
                                  window_samples=50, min_samples=10)
        for _ in range(20):
            shedder.observe(0.001)
        assert not shedder.tripped
        for _ in range(30):
            shedder.observe(0.5)
        assert shedder.tripped and shedder.trips == 1
        assert shedder.retry_after() > 0
        for _ in range(50):
            shedder.observe(0.001)
        assert not shedder.tripped

    def test_slo_shedding_in_controller(self):
        cfg = AdmissionConfig(queue_capacity=100,
                              slo="lat<10ms,target=0.5,burn=1.0",
                              slo_min_samples=4, slo_window_samples=8)
        ctl = AdmissionController(cfg)
        ctl.note_served(8, [0.5] * 8)   # every sample bad -> burn trips
        assert ctl.offer(_q(0), 0.0) == "slo-burn"
        assert ctl.counters.shed_slo == 1


# ---------------------------------------------------------------------------
# micro-batcher


class TestMicroBatcher:
    def test_fifo_and_max(self):
        batcher = MicroBatcher(BatchPolicy(batch_max=3, batch_wait=0.0))
        from collections import deque

        queue = deque(QueueEntry(_q(i), arrival=0.0) for i in range(5))
        batch, expired = batcher.form_batch(queue, now=1.0)
        assert [e.query.id for e in batch] == ["q0", "q1", "q2"]
        assert not expired and len(queue) == 2

    def test_expired_dropped_before_execution(self):
        batcher = MicroBatcher(BatchPolicy(batch_max=8, batch_wait=0.0))
        from collections import deque

        queue = deque([
            QueueEntry(_q(0, deadline=0.5), arrival=0.0),
            QueueEntry(_q(1, deadline=5.0), arrival=0.0),
            QueueEntry(_q(2), arrival=0.0),              # no deadline
        ])
        batch, expired = batcher.form_batch(queue, now=1.0)
        assert [e.query.id for e in expired] == ["q0"]
        assert [e.query.id for e in batch] == ["q1", "q2"]
        assert batcher.dropped_expired == 1


# ---------------------------------------------------------------------------
# kernels


@pytest.fixture(scope="module")
def serve_tree():
    p = clustered_clumps(1500, seed=12)
    return build_tree(p, tree_type="oct", bucket_size=16)


class TestKernels:
    def test_knn_matches_brute_force(self, serve_tree):
        pos = serve_tree.particles.position
        rng = np.random.default_rng(5)
        for _ in range(25):
            pt = pos[rng.integers(len(pos))] + rng.normal(0, 0.05, 3)
            idx, d2 = knn_point(serve_tree, pt, 6)
            delta = pos - pt
            ref = np.sort(np.einsum("ij,ij->i", delta, delta))[:6]
            np.testing.assert_allclose(np.sort(d2), ref)
            assert np.all(np.diff(d2) >= 0)  # sorted output

    def test_range_matches_brute_force(self, serve_tree):
        pos = serve_tree.particles.position
        rng = np.random.default_rng(6)
        for _ in range(25):
            pt = pos[rng.integers(len(pos))] + rng.normal(0, 0.02, 3)
            idx = range_point(serve_tree, pt, 0.15)
            delta = pos - pt
            ref = np.where(np.einsum("ij,ij->i", delta, delta) <= 0.15**2)[0]
            np.testing.assert_array_equal(idx, np.sort(ref))

    def test_range_max_results_caps_payload(self, serve_tree):
        pt = serve_tree.particles.position.mean(axis=0)
        full = range_point(serve_tree, pt, 10.0)
        capped = range_point(serve_tree, pt, 10.0, max_results=7)
        assert len(full) == len(serve_tree.particles)
        assert len(capped) == 7

    def test_range_count_exact_when_capped(self, serve_tree):
        """A capped range payload still reports the exact hit count and
        flags the truncation; an uncapped one carries no flag."""
        pt = serve_tree.particles.position.mean(axis=0)
        doc = {"op": "range", "point": [float(c) for c in pt],
               "radius": 10.0}
        capped, = execute_queries(serve_tree, [doc], max_results=7)
        assert capped["count"] == len(serve_tree.particles)
        assert len(capped["idx"]) == 7
        assert capped["truncated"] is True
        full, = execute_queries(serve_tree, [doc],
                                max_results=len(serve_tree.particles))
        assert full["count"] == len(full["idx"]) == len(serve_tree.particles)
        assert "truncated" not in full

    def test_density_positive(self, serve_tree):
        pt = serve_tree.particles.position[0]
        rho, h = density_point(serve_tree, pt, 12)
        assert rho > 0 and h > 0

    def test_execute_queries_isolates_bad_query(self, serve_tree):
        docs = [
            _q(0).to_wire(),
            {"op": "knn", "point": [0, 0, 0], "k": "NaN"},
            _q(2, op="range", radius=0.1).to_wire(),
        ]
        out = execute_queries(serve_tree, docs)
        assert "idx" in out[0]
        assert "error" in out[1]
        assert "count" in out[2]


# ---------------------------------------------------------------------------
# circuit breaker + executor


class TestCircuitBreaker:
    def test_open_halfopen_close_cycle(self):
        t = [0.0]
        br = CircuitBreaker(threshold=2, cooldown=1.0, clock=lambda: t[0])
        assert br.allow()
        br.record_failure()
        assert br.state == "closed" and br.allow()
        br.record_failure()
        assert br.state == "open" and not br.allow()
        t[0] = 1.5
        assert br.allow() and br.state == "half-open"
        br.record_failure()               # trial fails -> re-open
        assert br.state == "open" and not br.allow()
        t[0] = 3.0
        assert br.allow()
        br.record_success()
        assert br.state == "closed" and br.failures == 0
        assert br.opened == 2


class TestBatchExecutor:
    def test_inline_matches_threads(self):
        state = build_resident_state({"kind": "clumps", "n": 800, "seed": 4})
        queries = [_q(i, point=state.particles.position[i] + 0.01).to_wire()
                   for i in range(40)]
        inline = BatchExecutor(state, mode="inline")
        threads = BatchExecutor(state, mode="threads", workers=3)
        try:
            assert inline.execute(queries) == threads.execute(queries)
        finally:
            threads.shutdown()

    def test_breaker_falls_back_to_serial(self):
        state = build_resident_state({"kind": "cube", "n": 300, "seed": 4})
        from repro.exec.supervise import SupervisorConfig

        ex = BatchExecutor(
            state, mode="threads", workers=2,
            supervisor_config=SupervisorConfig(max_chunk_retries=1,
                                               backoff_base=0.0),
            breaker=CircuitBreaker(threshold=1, cooldown=60.0))
        import threading

        real = ex._chunk_fn

        def flaky(chunk):
            # die only inside pool workers: quarantine-to-serial (which
            # runs in the dispatching thread) still answers correctly
            if threading.current_thread().name.startswith("serve-exec"):
                raise RuntimeError("worker exploded")
            return real(chunk)

        ex._chunk_fn = flaky
        queries = [_q(i, point=(0.5, 0.5, 0.5)).to_wire() for i in range(8)]
        out = ex.execute(queries)
        # every pool attempt failed -> chunks quarantined to serial; the
        # degraded run trips the breaker (threshold=1) but answers are good
        assert len(out) == len(queries) and all("idx" in d for d in out)
        assert ex.breaker.state == "open"
        assert ex.supervisor.total_stats.quarantined > 0
        out = ex.execute(queries)        # breaker open -> straight to serial
        assert len(out) == len(queries) and all("idx" in d for d in out)
        assert ex.serial_batches >= 1


# ---------------------------------------------------------------------------
# resident state + checkpoint round-trip


class TestResident:
    def test_checkpoint_roundtrip_bit_identical(self, tmp_path):
        state = build_resident_state(
            {"kind": "clumps", "n": 500, "seed": 9, "bucket_size": 8})
        path = str(tmp_path / "ck.npz")
        checkpoint_resident(state, path)
        restored = build_resident_state({"checkpoint": path})
        assert restored.spec["kind"] == "clumps"     # generator spec adopted
        np.testing.assert_array_equal(restored.particles.position,
                                      state.tree.particles.position)
        q = _q(0, point=state.particles.position[3] + 0.02)
        a = execute_queries(state.tree, [q.to_wire()])
        b = execute_queries(restored.tree, [q.to_wire()])
        assert a == b

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset kind"):
            build_resident_state({"kind": "torus", "n": 10})


# ---------------------------------------------------------------------------
# traffic + DES model


class TestTrafficAndModel:
    def test_trace_deterministic_and_sorted(self):
        shape = TrafficShape(rate=300, duration=1.0, burst_factor=4.0,
                             think_tail=0.1, deadline=0.0, deadline_frac=0.3)
        a = generate_traffic(shape, np.zeros(3), np.ones(3), seed=7)
        b = generate_traffic(shape, np.zeros(3), np.ones(3), seed=7)
        assert len(a) == len(b) > 0
        for qa, qb in zip(a, b):
            assert qa.t == qb.t and qa.deadline == qb.deadline
            np.testing.assert_array_equal(qa.point, qb.point)
        ts = [q.t for q in a]
        assert ts == sorted(ts)
        c = generate_traffic(shape, np.zeros(3), np.ones(3), seed=8)
        assert [q.t for q in c] != ts

    def test_burst_raises_local_rate(self):
        shape = TrafficShape(rate=200, duration=2.0, burst_factor=5.0,
                             burst_window=(0.4, 0.6))
        trace = generate_traffic(shape, np.zeros(3), np.ones(3), seed=1)
        ts = np.array([q.t for q in trace])
        burst = np.sum((ts >= 0.8) & (ts < 1.2)) / 0.4
        calm = np.sum(ts < 0.8) / 0.8
        assert burst > 2.5 * calm

    def test_sim_conservation_under_faults(self):
        shape = TrafficShape(rate=500, duration=1.0, burst_factor=4.0,
                             deadline=0.0, deadline_frac=0.2)
        trace = generate_traffic(shape, np.zeros(3), np.ones(3), seed=3)
        res = simulate_service(
            trace, AdmissionConfig(queue_capacity=32, rate=200.0, burst=20),
            BatchPolicy(batch_max=16, batch_wait=0.0),
            ServiceModel(straggler_prob=0.2, crash_prob=0.1), seed=3)
        c = res.counters
        assert c["offered"] == len(trace)
        assert c["offered"] == c["admitted"] + c["shed_total"]
        assert c["admitted"] == c["served"] + c["expired"] + c["failed"]
        assert c["max_queue_depth"] <= 32
        assert res.crashes > 0 or res.stragglers > 0

    def test_sim_sheds_under_overload_with_bounded_queue(self):
        """The acceptance shape: 4x overload must shed, not queue."""
        shape = TrafficShape(rate=2000, duration=1.0, burst_factor=4.0)
        trace = generate_traffic(shape, np.zeros(3), np.ones(3), seed=2)
        res = simulate_service(
            trace, AdmissionConfig(queue_capacity=64, rate=500.0, burst=50),
            BatchPolicy(batch_max=32, batch_wait=0.0), ServiceModel(), seed=2)
        assert res.counters["shed_total"] > 0
        assert res.counters["max_queue_depth"] <= 64
        assert res.latency.count == res.counters["served"]
