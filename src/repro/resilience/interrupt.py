"""Graceful SIGTERM/SIGINT handling for long-running CLI runs.

``graceful_interrupts()`` swaps in signal handlers that raise
:class:`RunInterrupted` in the main thread, so a kill lands as an
exception at a well-defined point in the iteration loop instead of a
hard process death.  The Driver's crash hook then dumps the armed
flight recorder, and the CLI writes a final checkpoint (when
checkpointing is enabled) before exiting ``128 + signum`` — the shell
convention for death-by-signal — leaving the run resumable.

``RunInterrupted`` derives from ``BaseException`` (like
``KeyboardInterrupt``) so application-level ``except Exception``
blocks cannot swallow a shutdown request.
"""

from __future__ import annotations

import signal
from contextlib import contextmanager
from typing import Iterator

DEFAULT_SIGNALS = (signal.SIGTERM, signal.SIGINT)


class RunInterrupted(BaseException):
    """Raised in the main thread when a termination signal arrives."""

    def __init__(self, signum: int) -> None:
        self.signum = int(signum)
        super().__init__(f"interrupted by {self.signal_name}")

    @property
    def signal_name(self) -> str:
        try:
            return signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            return f"signal {self.signum}"

    @property
    def exit_code(self) -> int:
        """The ``128 + N`` shell convention (SIGTERM -> 143, SIGINT -> 130)."""
        return 128 + self.signum


@contextmanager
def graceful_interrupts(
    signals: tuple[signal.Signals, ...] = DEFAULT_SIGNALS,
) -> Iterator[None]:
    """Convert the given signals into :class:`RunInterrupted` for the
    duration of the block; previous handlers are restored on exit."""

    def _raise(signum: int, frame) -> None:  # noqa: ARG001 - signal API
        raise RunInterrupted(signum)

    previous = {}
    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, _raise)
    except ValueError:
        # not the main thread (or an embedded interpreter): handlers can't
        # be installed — run unprotected rather than refuse to run
        for sig, old in previous.items():
            signal.signal(sig, old)
        yield
        return
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
