"""Whole-frontier traversal kernels: numpy fallback + optional numba JIT.

The batched traversal engine (:mod:`repro.core.batched`) carries the entire
frontier as flat ``(source, target)`` pair arrays.  The kernels here evaluate
one whole frontier per call: the MAC acceptance test, the monopole/leaf
gravity accumulation, neighbour-candidate distances (kNN), and the
kernel-weighted density gather.

Two implementations exist for every kernel:

* a **numpy** fallback that reduces per-row partial sums strictly
  sequentially in pair order (``np.bincount`` walks its input in order)
  and folds them into the output with one masked vector add per call;
* an optional **numba** JIT that fills the same partial-sum buffer with a
  fused scalar loop and shares the fold.

The numba path is feature-detected at import time and falls back silently —
``import repro`` never requires numba, and results are bit-identical either
way (the golden tests in ``tests/test_differential.py`` pin this).  Set
``REPRO_NO_NUMBA=1`` to force the numpy fallback even when numba is
installed (the CI ``build-equiv`` matrix runs both legs).
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "numba_enabled",
    "mac_open_pairs",
    "expand_pair_rows",
    "expand_pair_products",
    "accumulate_monopole",
    "accumulate_monopole_potential",
    "accumulate_pp",
    "accumulate_pp_potential",
    "pair_dist_sq",
    "scatter_add_1d",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - the default container path
    HAVE_NUMBA = False
    _njit = None


def numba_enabled() -> bool:
    """True when the JIT path is active (numba importable and not opted out)."""
    return HAVE_NUMBA and os.environ.get("REPRO_NO_NUMBA", "") != "1"


# ---------------------------------------------------------------------------
# Pair expansion helpers (pure indexing — one implementation).
# ---------------------------------------------------------------------------

def expand_pair_rows(pstart: np.ndarray, pend: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-pair particle ranges into (rows, pair_of_row).

    ``pstart``/``pend`` are the target bucket ranges of P pairs; the result
    lists every target-particle row of every pair, pair-major, plus the pair
    index each row belongs to.
    """
    from ..core.util import ranges_to_indices

    counts = np.asarray(pend, dtype=np.int64) - np.asarray(pstart, dtype=np.int64)
    rows = ranges_to_indices(pstart, pend)
    pair_of_row = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    return rows, pair_of_row


def expand_pair_products(
    tstart: np.ndarray, tend: np.ndarray, sstart: np.ndarray, send: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand P (target-range, source-range) pairs into the full particle
    cross product: (target_rows, source_rows), pair-major, target-outer.

    The flat length equals the frontier's ``pp_interactions``.
    """
    from ..core.util import ranges_to_indices

    tstart = np.asarray(tstart, dtype=np.int64)
    tend = np.asarray(tend, dtype=np.int64)
    sstart = np.asarray(sstart, dtype=np.int64)
    send = np.asarray(send, dtype=np.int64)
    tc = tend - tstart
    sc = send - sstart
    if int((tc * sc).sum()) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Division-free expansion: each target row of pair p repeats sc[p]
    # times, and each (pair, target-row) block replays [sstart_p, send_p).
    t_all = ranges_to_indices(tstart, tend)
    sc_per_trow = np.repeat(sc, tc)
    t_rows = np.repeat(t_all, sc_per_trow)
    s_rows = ranges_to_indices(np.repeat(sstart, tc), np.repeat(send, tc))
    return t_rows, s_rows


# ---------------------------------------------------------------------------
# MAC acceptance (pairwise sphere-box test).
# ---------------------------------------------------------------------------

def _mac_open_pairs_np(
    box_lo: np.ndarray, box_hi: np.ndarray, center: np.ndarray, radius_sq: np.ndarray
) -> np.ndarray:
    d = np.maximum(np.maximum(box_lo - center, center - box_hi), 0.0)
    d2 = d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2]
    return d2 <= radius_sq


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _mac_open_pairs_nb(box_lo, box_hi, center, radius_sq):
        n = box_lo.shape[0]
        out = np.empty(n, dtype=np.bool_)
        for k in range(n):
            d2 = 0.0
            for j in range(3):
                d = box_lo[k, j] - center[k, j]
                e = center[k, j] - box_hi[k, j]
                if e > d:
                    d = e
                if d < 0.0:
                    d = 0.0
                d2 += d * d
            out[k] = d2 <= radius_sq[k]
        return out


def mac_open_pairs(
    box_lo: np.ndarray, box_hi: np.ndarray, center: np.ndarray, radius_sq: np.ndarray
) -> np.ndarray:
    """Pairwise multipole-acceptance test: does target box k intersect the
    opening sphere of source k?  All inputs are per-pair arrays."""
    if numba_enabled():  # pragma: no cover - numba-only leg
        return _mac_open_pairs_nb(
            np.ascontiguousarray(box_lo), np.ascontiguousarray(box_hi),
            np.ascontiguousarray(center), np.ascontiguousarray(radius_sq),
        )
    return _mac_open_pairs_np(box_lo, box_hi, center, radius_sq)


# ---------------------------------------------------------------------------
# Scatter accumulation strategy.
#
# Every accumulate_* kernel first reduces its per-pair values into a fresh
# per-row partial-sum buffer, sequentially in pair order (np.bincount walks
# its input in order, exactly like the numba loop), and then folds that
# buffer into the output with ONE vector add restricted to the rows that
# actually received contributions.  Consequences:
#
# * numpy and numba legs are bit-identical (bincount order == loop order;
#   the masked fold is shared);
# * results are chunk-independent (a row's partial sum depends only on its
#   own pair subsequence, and the fold happens exactly once per level in
#   which the row participates), which is what makes the batched engine
#   bit-identical across exec backends and worker counts;
# * it is ~5x faster than np.add.at, whose buffered inner loop dominated
#   the batched traversal profile.
# ---------------------------------------------------------------------------

def _fold_rows(out, rows, contrib):
    """``out[r] += contrib[r]`` for every row r present in ``rows``."""
    touched = np.zeros(out.shape[0], dtype=bool)
    touched[rows] = True
    idx = np.flatnonzero(touched)
    out[idx] += contrib[idx]


def _bincount_weighted3(rows, w, d, n):
    """Per-component ``bincount(rows, w * d[:, j])`` — the multiply happens
    per column so each bincount reads contiguous weights."""
    contrib = np.empty((n, 3), dtype=np.float64)
    for j in range(3):
        contrib[:, j] = np.bincount(rows, weights=w * d[:, j], minlength=n)
    return contrib


# ---------------------------------------------------------------------------
# Gravity: monopole (node) accumulation over expanded pair rows.
# ---------------------------------------------------------------------------

def _monopole_contrib_np(rows, pos, center, mass, G, eps2, n):
    d = center - pos
    r2 = d[:, 0] * d[:, 0]
    r2 += d[:, 1] * d[:, 1]
    r2 += d[:, 2] * d[:, 2]
    rs = r2 + eps2
    with np.errstate(divide="ignore", invalid="ignore"):
        # rs * sqrt(rs) instead of rs ** 1.5: sqrt and multiply are
        # correctly rounded everywhere, so the vectorised and the scalar
        # (numba) legs agree bit-for-bit; pow's SIMD path does not.
        w = np.sqrt(rs)
        w *= rs
        np.divide(G * mass, w, out=w)
    w[r2 == 0.0] = 0.0
    return _bincount_weighted3(rows, w, d, n)


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _monopole_contrib_nb(rows, pos, center, mass, G, eps2, n):
        contrib = np.zeros((n, 3), dtype=np.float64)
        for k in range(rows.shape[0]):
            dx = center[k, 0] - pos[k, 0]
            dy = center[k, 1] - pos[k, 1]
            dz = center[k, 2] - pos[k, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 > 0.0:
                rs = r2 + eps2
                w = G * mass[k] / (rs * np.sqrt(rs))
                r = rows[k]
                contrib[r, 0] += w * dx
                contrib[r, 1] += w * dy
                contrib[r, 2] += w * dz
        return contrib


def accumulate_monopole(accel, rows, pos, center, mass, G=1.0, softening=0.0):
    """Fold Plummer-monopole pair contributions ``w_k * (center_k - pos_k)``
    into ``accel`` (per-row partial sums in pair order, one fold per call)."""
    eps2 = softening * softening
    n = accel.shape[0]
    if numba_enabled():  # pragma: no cover - numba-only leg
        contrib = _monopole_contrib_nb(
            np.ascontiguousarray(rows), np.ascontiguousarray(pos),
            np.ascontiguousarray(center), np.ascontiguousarray(mass),
            float(G), float(eps2), n,
        )
    else:
        contrib = _monopole_contrib_np(rows, pos, center, mass, float(G),
                                       float(eps2), n)
    _fold_rows(accel, rows, contrib)


def _monopole_potential_contrib_np(rows, pos, center, mass, G, eps2, n):
    d = center - pos
    r2 = d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(r2 > 0.0, 1.0 / np.sqrt(r2 + eps2), 0.0)
    return np.bincount(rows, weights=-G * mass * inv, minlength=n)


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _monopole_potential_contrib_nb(rows, pos, center, mass, G, eps2, n):
        contrib = np.zeros(n, dtype=np.float64)
        for k in range(rows.shape[0]):
            dx = center[k, 0] - pos[k, 0]
            dy = center[k, 1] - pos[k, 1]
            dz = center[k, 2] - pos[k, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 > 0.0:
                contrib[rows[k]] += -G * mass[k] * (1.0 / np.sqrt(r2 + eps2))
        return contrib


def accumulate_monopole_potential(potential, rows, pos, center, mass, G=1.0, softening=0.0):
    """Monopole potential companion of :func:`accumulate_monopole`."""
    eps2 = softening * softening
    n = potential.shape[0]
    if numba_enabled():  # pragma: no cover - numba-only leg
        contrib = _monopole_potential_contrib_nb(
            np.ascontiguousarray(rows), np.ascontiguousarray(pos),
            np.ascontiguousarray(center), np.ascontiguousarray(mass),
            float(G), float(eps2), n,
        )
    else:
        contrib = _monopole_potential_contrib_np(
            rows, pos, center, mass, float(G), float(eps2), n
        )
    _fold_rows(potential, rows, contrib)


# ---------------------------------------------------------------------------
# Gravity: exact particle-particle (leaf) accumulation.
# ---------------------------------------------------------------------------

def _pp_contrib_np(t_rows, s_rows, positions, masses, G, eps2, n):
    # Component-wise with contiguous 1-D temporaries: the per-particle
    # component arrays are tiny (they stay in cache), so the P-sized pair
    # temporaries dominate memory traffic and every pass over them should
    # be unit-stride.
    contrib = np.empty((n, 3), dtype=np.float64)
    comps = [np.ascontiguousarray(positions[:, j]) for j in range(3)]
    d = [c[s_rows] for c in comps]
    for dj, c in zip(d, comps):
        dj -= c[t_rows]
    r2 = d[0] * d[0]
    r2 += d[1] * d[1]
    r2 += d[2] * d[2]
    rs = r2 + eps2
    with np.errstate(divide="ignore", invalid="ignore"):
        w = np.sqrt(rs)
        w *= rs
        np.divide(G * masses[s_rows], w, out=w)
    w[r2 == 0.0] = 0.0
    for j in range(3):
        contrib[:, j] = np.bincount(t_rows, weights=w * d[j], minlength=n)
    return contrib


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _pp_contrib_nb(t_rows, s_rows, positions, masses, G, eps2, n):
        contrib = np.zeros((n, 3), dtype=np.float64)
        for k in range(t_rows.shape[0]):
            t = t_rows[k]
            s = s_rows[k]
            dx = positions[s, 0] - positions[t, 0]
            dy = positions[s, 1] - positions[t, 1]
            dz = positions[s, 2] - positions[t, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 > 0.0:
                rs = r2 + eps2
                w = G * masses[s] / (rs * np.sqrt(rs))
                contrib[t, 0] += w * dx
                contrib[t, 1] += w * dy
                contrib[t, 2] += w * dz
        return contrib


def accumulate_pp(accel, t_rows, s_rows, positions, masses, G=1.0, softening=0.0):
    """Exact pairwise accumulation over expanded (target, source) particle
    row pairs; self/coincident pairs (r = 0) contribute zero."""
    eps2 = softening * softening
    n = accel.shape[0]
    if numba_enabled():  # pragma: no cover - numba-only leg
        contrib = _pp_contrib_nb(
            np.ascontiguousarray(t_rows), np.ascontiguousarray(s_rows),
            np.ascontiguousarray(positions), np.ascontiguousarray(masses),
            float(G), float(eps2), n,
        )
    else:
        contrib = _pp_contrib_np(t_rows, s_rows, positions, masses, float(G),
                                 float(eps2), n)
    _fold_rows(accel, t_rows, contrib)


def _pp_potential_contrib_np(t_rows, s_rows, positions, masses, G, eps2, n):
    d = positions[s_rows] - positions[t_rows]
    r2 = d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = np.where(r2 > 0.0, 1.0 / np.sqrt(r2 + eps2), 0.0)
    return np.bincount(t_rows, weights=-G * masses[s_rows] * inv, minlength=n)


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _pp_potential_contrib_nb(t_rows, s_rows, positions, masses, G, eps2, n):
        contrib = np.zeros(n, dtype=np.float64)
        for k in range(t_rows.shape[0]):
            t = t_rows[k]
            s = s_rows[k]
            dx = positions[s, 0] - positions[t, 0]
            dy = positions[s, 1] - positions[t, 1]
            dz = positions[s, 2] - positions[t, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 > 0.0:
                contrib[t] += -G * masses[s] * (1.0 / np.sqrt(r2 + eps2))
        return contrib


def accumulate_pp_potential(potential, t_rows, s_rows, positions, masses, G=1.0, softening=0.0):
    """Exact pairwise potential companion of :func:`accumulate_pp`."""
    eps2 = softening * softening
    n = potential.shape[0]
    if numba_enabled():  # pragma: no cover - numba-only leg
        contrib = _pp_potential_contrib_nb(
            np.ascontiguousarray(t_rows), np.ascontiguousarray(s_rows),
            np.ascontiguousarray(positions), np.ascontiguousarray(masses),
            float(G), float(eps2), n,
        )
    else:
        contrib = _pp_potential_contrib_np(
            t_rows, s_rows, positions, masses, float(G), float(eps2), n
        )
    _fold_rows(potential, t_rows, contrib)


# ---------------------------------------------------------------------------
# kNN / density primitives.
# ---------------------------------------------------------------------------

def _pair_dist_sq_np(positions, rows_a, rows_b):
    d = positions[rows_a] - positions[rows_b]
    return d[:, 0] * d[:, 0] + d[:, 1] * d[:, 1] + d[:, 2] * d[:, 2]


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _pair_dist_sq_nb(positions, rows_a, rows_b):
        n = rows_a.shape[0]
        out = np.empty(n, dtype=np.float64)
        for k in range(n):
            a = rows_a[k]
            b = rows_b[k]
            dx = positions[a, 0] - positions[b, 0]
            dy = positions[a, 1] - positions[b, 1]
            dz = positions[a, 2] - positions[b, 2]
            out[k] = dx * dx + dy * dy + dz * dz
        return out


def pair_dist_sq(positions, rows_a, rows_b):
    """Squared distance of each (a, b) particle-row pair — the kNN candidate
    evaluation, flattened over the whole frontier."""
    if numba_enabled():  # pragma: no cover - numba-only leg
        return _pair_dist_sq_nb(
            np.ascontiguousarray(positions),
            np.ascontiguousarray(rows_a), np.ascontiguousarray(rows_b),
        )
    return _pair_dist_sq_np(positions, rows_a, rows_b)


if HAVE_NUMBA:  # pragma: no cover - numba-only leg
    @_njit(cache=True)
    def _scatter_add_1d_nb(out, rows, values):
        for k in range(rows.shape[0]):
            out[rows[k]] += values[k]


def scatter_add_1d(out, rows, values):
    """``out[rows[k]] += values[k]`` sequentially in k — the density (and any
    other per-particle scalar) gather.  ``np.add.at`` semantics exactly."""
    if numba_enabled():  # pragma: no cover - numba-only leg
        _scatter_add_1d_nb(
            out, np.ascontiguousarray(rows),
            np.ascontiguousarray(np.asarray(values, dtype=out.dtype)),
        )
    else:
        np.add.at(out, rows, values)
