"""Admission control for the query service: token bucket, bounded queue,
burn-rate shedding, and the conservation accounting the tests pin.

The :class:`AdmissionController` is deliberately a plain synchronous
object with an explicit clock — the asyncio service and the DES model
drive the *same* instance type, so the shed/served/expired accounting
they produce can be compared number-for-number (ISSUE 9 acceptance).

Conservation invariants (property-tested in ``tests/test_serve.py``):

* ``offered == admitted + shed_total`` — every offer is decided once.
* ``admitted == served + expired + failed + still-queued + in-flight``
  — admitted work is never silently dropped.
* the queue never holds more than ``queue_capacity`` entries.
* a deadline-expired entry is never part of a dispatched batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from ..obs.slo import SLOSpec, parse_slo_spec
from .protocol import (
    SHED_DRAINING,
    SHED_QUEUE,
    SHED_RATE,
    SHED_SLO,
    Query,
)

ADMITTED = "admitted"


class TokenBucket:
    """Classic token bucket with an explicit clock.

    ``take(now)`` refills ``rate`` tokens per second of elapsed ``now``
    (monotone non-decreasing; regressions are clamped) up to ``burst``,
    then spends one token if available.  With the query's *scheduled*
    arrival offset as ``now``, grant decisions depend only on the
    traffic trace, not on how fast the caller paces it.
    """

    __slots__ = ("rate", "burst", "tokens", "_last")

    def __init__(self, rate: float, burst: float | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, self.rate)
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {self.burst}")
        self.tokens = self.burst
        self._last: float | None = None

    def _refill(self, now: float) -> None:
        if self._last is None:
            self._last = now
            return
        dt = now - self._last
        if dt > 0:
            self.tokens = min(self.burst, self.tokens + dt * self.rate)
            self._last = now

    def take(self, now: float) -> bool:
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def time_to_token(self, now: float) -> float:
        """Seconds until one token is available (0 when already granted)."""
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class BurnRateShedder:
    """Sheds when the trailing served-latency window burns the SLO.

    Reuses the PR 6 spec grammar (``lat<5ms,target=0.99,burn=1.5``):
    over the last ``window_samples`` served latencies, the burn rate is
    ``bad_fraction / (1 - target)``; at or above ``burn_limit`` the
    controller rejects new work until the window cools down.
    """

    def __init__(self, spec: SLOSpec | str, window_samples: int = 256,
                 min_samples: int = 32) -> None:
        self.spec = parse_slo_spec(spec) if isinstance(spec, str) else spec
        self.window: deque[bool] = deque(maxlen=int(window_samples))
        self.min_samples = int(min_samples)
        self.trips = 0
        self._tripped = False

    def observe(self, latency: float) -> None:
        self.window.append(latency >= self.spec.threshold)
        was = self._tripped
        self._tripped = self._evaluate()
        if self._tripped and not was:
            self.trips += 1

    def _evaluate(self) -> bool:
        n = len(self.window)
        if n < self.min_samples:
            return False
        bad = sum(self.window) / n
        burn = bad / max(1.0 - self.spec.target, 1e-12)
        return burn >= self.spec.burn_limit

    @property
    def tripped(self) -> bool:
        return self._tripped

    def retry_after(self) -> float:
        """Rough cool-down: time for the window to turn over at threshold pace."""
        return max(0.05, self.spec.threshold * len(self.window) * self.spec.window)


@dataclass
class ServeCounters:
    """Monotone accounting for one service lifetime."""

    offered: int = 0
    admitted: int = 0
    served: int = 0
    expired: int = 0
    failed: int = 0
    shed_draining: int = 0
    shed_queue: int = 0
    shed_slo: int = 0
    shed_rate: int = 0
    max_queue_depth: int = 0

    @property
    def shed_total(self) -> int:
        return (self.shed_draining + self.shed_queue
                + self.shed_slo + self.shed_rate)

    @property
    def settled(self) -> int:
        """Admitted queries with a final outcome."""
        return self.served + self.expired + self.failed

    def to_dict(self) -> dict[str, int]:
        return {
            "offered": self.offered, "admitted": self.admitted,
            "served": self.served, "expired": self.expired,
            "failed": self.failed, "shed_total": self.shed_total,
            "shed_draining": self.shed_draining, "shed_queue": self.shed_queue,
            "shed_slo": self.shed_slo, "shed_rate": self.shed_rate,
            "max_queue_depth": self.max_queue_depth,
        }

    def accounting_key(self) -> dict[str, int]:
        """The subset the DES-vs-real agreement check compares."""
        return {"offered": self.offered, "admitted": self.admitted,
                "served": self.served, "expired": self.expired,
                "shed_total": self.shed_total}


@dataclass
class QueueEntry:
    """One admitted query waiting for a batch slot.

    ``arrival`` is in the dispatch clock domain (wall time for the real
    service, simulated time in the DES) — deadlines count from it.
    ``ctx`` is opaque caller state (the service parks an asyncio future
    there; the DES leaves it None).
    """

    query: Query
    arrival: float
    ctx: Any = None

    def expired_at(self, now: float) -> bool:
        d = self.query.deadline
        return d is not None and (now - self.arrival) >= d


@dataclass(frozen=True)
class AdmissionConfig:
    """Policy knobs, shared verbatim by ``repro serve`` and the DES."""

    queue_capacity: int = 1024
    rate: float | None = None          # token bucket rate (None = no limiter)
    burst: float | None = None         # bucket depth (None = max(1, rate))
    slo: str | None = None             # burn-rate shed spec, PR 6 grammar
    slo_window_samples: int = 256
    slo_min_samples: int = 32
    default_deadline: float | None = None

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")


class AdmissionController:
    """Bounded admission queue with explicit, ordered shed policy.

    Checks run in a fixed order so two executions over the same trace
    make identical decisions: draining -> queue capacity -> SLO burn
    rate -> token bucket.  The bucket is consulted *last* so a query
    shed for a full queue does not also burn a token.
    """

    def __init__(self, config: AdmissionConfig) -> None:
        self.config = config
        self.queue: deque[QueueEntry] = deque()
        self.bucket = (TokenBucket(config.rate, config.burst)
                       if config.rate is not None else None)
        self.shedder = (BurnRateShedder(config.slo, config.slo_window_samples,
                                        config.slo_min_samples)
                        if config.slo else None)
        self.counters = ServeCounters()
        self.draining = False
        #: observed per-query service estimate, drives queue-full retry_after
        self.service_estimate = 1e-3

    # -- intake -------------------------------------------------------------
    def offer(self, query: Query, now: float, ctx: Any = None) -> str:
        """Decide one query: returns ``"admitted"`` or a shed reason."""
        c = self.counters
        c.offered += 1
        if self.draining:
            c.shed_draining += 1
            return SHED_DRAINING
        if len(self.queue) >= self.config.queue_capacity:
            c.shed_queue += 1
            return SHED_QUEUE
        if self.shedder is not None and self.shedder.tripped:
            c.shed_slo += 1
            return SHED_SLO
        if self.bucket is not None:
            # scheduled arrival offset (when carried) keeps this decision
            # a pure function of the trace; only trusted in-process
            # submitters carry ``t`` — SocketServer strips it on decode
            policy_now = query.t if query.t is not None else now
            if not self.bucket.take(policy_now):
                c.shed_rate += 1
                return SHED_RATE
        if query.deadline is None and self.config.default_deadline is not None:
            query.deadline = self.config.default_deadline
        c.admitted += 1
        self.queue.append(QueueEntry(query, arrival=now, ctx=ctx))
        if len(self.queue) > c.max_queue_depth:
            c.max_queue_depth = len(self.queue)
        return ADMITTED

    def retry_after(self, reason: str, query: Query, now: float) -> float | None:
        """Back-off hint attached to shed responses (429 Retry-After)."""
        if reason == SHED_RATE and self.bucket is not None:
            policy_now = query.t if query.t is not None else now
            return round(self.bucket.time_to_token(policy_now), 6)
        if reason == SHED_QUEUE:
            return round(len(self.queue) * self.service_estimate, 6)
        if reason == SHED_SLO and self.shedder is not None:
            return round(self.shedder.retry_after(), 6)
        if reason == SHED_DRAINING:
            return None  # server is going away; reconnect, don't retry here
        return None

    # -- outcome bookkeeping -------------------------------------------------
    def note_served(self, n: int, latencies: list[float] | None = None) -> None:
        self.counters.served += n
        if latencies:
            if self.shedder is not None:
                for lat in latencies:
                    self.shedder.observe(lat)
            # EWMA of per-query service time for queue-full retry hints
            for lat in latencies:
                self.service_estimate += 0.1 * (lat - self.service_estimate)

    def note_expired(self, n: int) -> None:
        self.counters.expired += n

    def note_failed(self, n: int) -> None:
        self.counters.failed += n

    def start_drain(self) -> None:
        self.draining = True

    @property
    def depth(self) -> int:
        return len(self.queue)

    def snapshot(self) -> dict[str, Any]:
        doc: dict[str, Any] = dict(self.counters.to_dict())
        doc["queue_depth"] = len(self.queue)
        doc["queue_capacity"] = self.config.queue_capacity
        doc["draining"] = self.draining
        if self.bucket is not None:
            doc["tokens"] = round(self.bucket.tokens, 3)
        if self.shedder is not None:
            doc["slo_tripped"] = self.shedder.tripped
            doc["slo_trips"] = self.shedder.trips
        return doc
